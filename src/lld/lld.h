// LLD: the log-structured implementation of the Logical Disk (paper §3).
//
// LLD divides the disk into fixed-size segments; the segment being filled
// lives in main memory and is written in one disk operation. Each segment
// carries a summary used as a log for LLD's metadata, from which recovery
// can rebuild every in-memory structure in a single sweep over the disk —
// no checkpoints are taken during normal operation (§3.6). Flushes of
// under-filled segments use the paper's partial-segment strategy (§3.2):
// below a threshold the segment is written to a scratch physical segment
// and stays open in memory; the scratch is recycled without cleaning once
// the segment is finally written in full.
//
// On-disk layout:
//
//   sector 0          superblock
//   checkpoint region  two independent (A/B) checkpoint slots, each a
//                      CRC-guarded marker plus a chain of self-validating
//                      frames: one full base image followed by incremental
//                      delta frames (LldOptions::checkpoint_interval_segments).
//                      With incremental checkpointing off this degenerates to
//                      the paper's clean-shutdown image, invalidated on every
//                      startup.
//   segments           [data area | summary]  x num_segments
//
// The summary sits at the *end* of each segment so that a torn segment
// write (a crash mid-write) destroys the summary's CRC and the whole
// segment is ignored by recovery, never partially believed.

#ifndef SRC_LLD_LLD_H_
#define SRC_LLD_LLD_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/disk/block_device.h"
#include "src/ld/logical_disk.h"
#include "src/lld/block_map.h"
#include "src/lld/list_table.h"
#include "src/lld/lld_options.h"
#include "src/lld/reports.h"
#include "src/lld/summary_record.h"
#include "src/lld/usage_table.h"

namespace ld {

// Operation counters exposed for tests and benchmarks.
struct LldCounters {
  uint64_t user_writes = 0;           // Write() calls.
  uint64_t user_reads = 0;            // Read() calls.
  uint64_t user_bytes_written = 0;    // Logical bytes accepted from Write().
  uint64_t stored_bytes_written = 0;  // Bytes appended to segments (post-compression).
  uint64_t segments_written = 0;      // Full segment writes.
  uint64_t partial_segments_written = 0;
  uint64_t segments_cleaned = 0;
  uint64_t blocks_cleaned = 0;
  uint64_t cleaner_bytes_copied = 0;
  // Segment images programmed onto the media this session: full seals,
  // partial (scratch) flushes, cleaner output, stripe parity images, and
  // rebuild re-materializations. Each bumps exactly one segment's wear count
  // (see SegmentUsage::wear), so this equals the usage table's total wear —
  // the invariant the wear-histogram property tests check.
  uint64_t segment_images_written = 0;
  // Cleaner-written (cold-generation) segment images, a subset of the above.
  uint64_t cold_segments_written = 0;
  uint64_t flushes = 0;
  uint64_t nvram_absorbed_flushes = 0;
  uint64_t arus_committed = 0;
  uint64_t pred_hint_hits = 0;
  uint64_t pred_hint_misses = 0;
  uint64_t blocks_compressed = 0;
  uint64_t compression_saved_bytes = 0;
  uint64_t read_crc_failures = 0;     // Reads that failed payload-CRC verification.
  // Damaged blocks rebuilt from segment parity (read path + scrub). Each one
  // is also relocated through the log so the repaired copy is durable.
  uint64_t blocks_reconstructed = 0;
  // Damaged blocks rebuilt from the cross-channel stripe peers (second
  // redundancy tier — the per-segment lane could not repair them).
  uint64_t blocks_stripe_reconstructed = 0;
  // Cross-channel stripe sets formed (seal-time + FormStripes) / dissolved
  // (cleaner countermand, scrub retirement, rebuild double fault).
  uint64_t stripes_formed = 0;
  uint64_t stripes_dissolved = 0;
  // Incremental checkpointing: frames committed to the A/B region (base +
  // delta), and rebases (chain compacted into a fresh base in the other slot
  // because the active slot filled up).
  uint64_t checkpoint_frames_written = 0;
  uint64_t checkpoint_rebases = 0;
};

// In-memory footprint of LLD's data structures (paper Table 2).
struct MemoryFootprint {
  uint64_t block_map_bytes = 0;
  uint64_t list_table_bytes = 0;
  uint64_t usage_table_bytes = 0;
  uint64_t open_segment_bytes = 0;
  // Captured summary records awaiting the next incremental checkpoint frame
  // (zero with checkpoint_interval_segments == 0).
  uint64_t checkpoint_pending_bytes = 0;
  uint64_t Total() const {
    return block_map_bytes + list_table_bytes + usage_table_bytes + open_segment_bytes +
           checkpoint_pending_bytes;
  }
};

class LogStructuredDisk : public LogicalDisk {
 public:
  // Formats `device` for LLD (writes the superblock, invalidates the
  // checkpoint, erases stale summaries) and returns a running instance.
  static StatusOr<std::unique_ptr<LogStructuredDisk>> Format(BlockDevice* device,
                                                             const LldOptions& options);

  // Opens a previously formatted device. Uses the newest valid checkpoint
  // chain (clean-shutdown image or base + incremental deltas) when one
  // exists, falling back along the typed ladder in RecoveryReport otherwise;
  // last_recovery() on the returned instance reports what happened.
  static StatusOr<std::unique_ptr<LogStructuredDisk>> Open(BlockDevice* device,
                                                           const LldOptions& options);

  ~LogStructuredDisk() override = default;

  // ---- LogicalDisk interface ---------------------------------------------
  Status Read(Bid bid, std::span<uint8_t> out) override;
  // Queues the media transfer of a plain on-disk block and returns its tag;
  // holes, open-segment copies, compressed blocks, and anything needing the
  // repair path fall back to a synchronous Read (kInvalidIoTag).
  StatusOr<IoTag> SubmitRead(Bid bid, std::span<uint8_t> out) override;
  Status WaitRead(IoTag tag) override;
  Status Write(Bid bid, std::span<const uint8_t> data) override;
  StatusOr<Bid> NewBlock(Lid lid, Bid pred_bid, uint32_t size_bytes = 0) override;
  Status DeleteBlock(Bid bid, Lid lid, Bid pred_bid_hint) override;
  StatusOr<Lid> NewList(Lid pred_lid, ListHints hints) override;
  Status DeleteList(Lid lid, Lid pred_lid_hint) override;
  Status MoveSublist(Bid first, Bid last, Lid from_lid, Lid to_lid, Bid pred_bid) override;
  Status MoveList(Lid lid, Lid new_pred_lid) override;
  Status FlushList(Lid lid) override;
  Status BeginARU() override;
  Status EndARU() override;
  // Concurrent ARUs (paper §5.4's proposed extension): the summary-record
  // format already tags every record with an ARU id, so interleaved units
  // fall out naturally — recovery applies a unit's records only if its
  // commit record is on disk, regardless of interleaving.
  StatusOr<AruId> BeginConcurrentARU() override;
  Status SelectARU(AruId id) override;
  Status EndConcurrentARU(AruId id) override;
  Status AbandonARU(AruId id) override;
  // SwapContents (paper §5.4): implemented as a crash-atomic exchange
  // through the log (an internal ARU containing both rewrites), giving the
  // paper's semantics — the new versions install atomically.
  Status SwapContents(Bid a, Bid b) override;
  // Offset addressing (paper §5.4): index a list as an array.
  StatusOr<Bid> BlockAtIndex(Lid lid, uint64_t index) override;
  Status Flush(FailureSet failures = FailureSet::kPowerFailure) override;
  Status ReserveBlocks(uint64_t count, uint32_t size_bytes = 0) override;
  Status CancelReservation(uint64_t count, uint32_t size_bytes = 0) override;
  Status Shutdown() override;
  uint32_t default_block_size() const override { return options_.block_size; }
  StatusOr<uint32_t> BlockSize(Bid bid) const override;
  uint64_t FreeBytes() const override;

  // ---- Maintenance --------------------------------------------------------

  // Runs the segment cleaner on up to `count` victim segments (paper §3.5).
  Status CleanSegments(uint32_t count);

  // Idle-time reorganizer: rewrites on-disk blocks in list order (walking the
  // list of lists) to restore sequential layout, using at most
  // `max_segments` fresh segments. Returns the number of segments written.
  StatusOr<uint32_t> ReorganizeLists(uint32_t max_segments);

  // Adaptive rearrangement (Akyürek & Salem 1993, §5.3): rewrites the most
  // frequently read on-disk blocks together, so random reads of the hot set
  // pay short seeks. Requires LldOptions::track_read_heat. Returns the
  // number of blocks moved.
  StatusOr<uint32_t> RearrangeHotBlocks(uint32_t max_blocks);

  // Read-repair pass (lld_scrub.cc): verifies every full segment's summary
  // and every live on-disk block's payload CRC, relocates all live blocks
  // off segments whose summaries are damaged (through the cleaner's writer),
  // re-logs their metadata from the in-memory tables, and retires them —
  // after which a crash+recovery no longer trips on the damage. Damaged
  // *payloads* are reported (blocks_corrupt / blocks_unreadable); their
  // contents cannot be recomputed from a single copy, so reads keep
  // returning typed errors for them. Requires no open ARUs. With
  // LldOptions::segment_parity, a single damaged extent per segment is
  // *reconstructed* from the segment's parity block and relocated instead.
  StatusOr<ScrubReport> Scrub() override;

  // Incremental scrub: verifies the next `max_segments` segment summaries
  // (and the payload CRCs of all live blocks stored in that segment range)
  // from a persistent cursor, running the full suspect-retirement protocol
  // per slice. One *cycle* covers the whole volume; the returned report
  // accumulates across the cycle's slices and resets when a new cycle
  // starts (the cursor wraps). Each slice is individually crash-safe — the
  // relocation-batch / kScrubIntent / summary-zeroing ordering of the
  // monolithic pass holds within every slice — so a crash between slices is
  // no worse than a crash between two foreground Scrub() calls. Scrub() is
  // exactly one full-range slice after a quiesce (plus a cursor reset), so
  // the all-at-once semantics remain the differential baseline.
  StatusOr<ScrubReport> ScrubStep(uint32_t max_segments);
  // True while an incremental scrub cycle is mid-volume.
  bool scrub_cycle_active() const { return scrub_.active; }
  // Next segment index ScrubStep will examine (0 when no cycle is active).
  uint32_t scrub_cursor() const { return scrub_.cursor; }

  // Writes the deferred checkpoint delta frame if one is due
  // (LldOptions::defer_checkpoint_frames); returns whether a frame went out.
  StatusOr<bool> CheckpointStep();
  // True when enough seals have accumulated that CheckpointStep would write.
  bool CheckpointFrameDue() const {
    return CheckpointingActive() && !ckpt_in_frame_write_ && ckpt_have_chain_ &&
           ckpt_seals_since_frame_ >= options_.checkpoint_interval_segments &&
           (!ckpt_pending_.empty() || !ckpt_retired_pending_.empty());
  }

  // ---- Cross-channel stripe parity (lld_stripe.cc) -------------------------

  // Maintenance pass: groups every unstriped sealed segment into stripe sets
  // (allowing partial width down to one member + parity on a distinct
  // channel, i.e. a mirror), so planned-failover tests can reach full
  // coverage without waiting for seal-time formation. Requires no open ARUs
  // and LldOptions::stripe_parity on a multi-channel device. Returns the
  // number of stripe sets formed. `max_sets` bounds one call (0 = form until
  // no candidate is left), so the maintenance scheduler can restripe in
  // paced slices after a heal.
  StatusOr<uint32_t> FormStripes(uint32_t max_sets = 0);

  // Tells the allocator that channel `ch` is dead (failed = true): segment
  // allocation, stripe formation, and parity placement avoid its band, and
  // incremental checkpointing is disabled (the checkpoint region may be
  // unreachable). Healing (failed = false) re-admits the band and queues
  // every striped segment on the channel for Rebuild — the heal semantics
  // are a *blank spare* (see FaultDisk::HealChannel), so the old images are
  // gone until rebuilt.
  Status SetChannelFailed(uint32_t ch, bool failed);

  // Re-materializes up to `max_segments` queued segments (0 = all) onto
  // their original locations — now blank spare media — from the N-1
  // surviving stripe peers: member images are XOR-reconstructed and verified
  // against their recorded summary sequence, parity images are recomputed
  // and verified against the recorded parity CRC; any mismatch is a typed
  // double fault (the stripe is dissolved, never guessed at). Rebuild I/O is
  // stamped with LldOptions::rebuild_tenant so the QoS dispatch layer can
  // pace it under foreground traffic. Callable incrementally while serving:
  // the returned report *accumulates* across the incremental calls of one
  // rebuild cycle and resets only once the queue has drained, so the last
  // slice's report describes the whole cycle.
  StatusOr<RebuildReport> Rebuild(uint32_t max_segments = 0);

  // Segments queued for Rebuild.
  uint32_t rebuild_pending() const { return static_cast<uint32_t>(rebuild_pending_.size()); }
  // Stripe sets currently registered (tests & benches).
  uint32_t stripe_count() const { return static_cast<uint32_t>(stripes_.size()); }
  // Full segments not covered by any stripe set. A bounded FormStripes pass
  // always leaves at least its record carrier unstriped, so an incremental
  // restripe driver uses this as its convergence signal (population stopped
  // shrinking), not "formed == 0".
  uint32_t UnstripedFullSegments() const {
    uint32_t n = 0;
    for (uint32_t s = 0; s < usage_->num_segments(); ++s) {
      if (usage_->segment(s).state == SegmentState::kFull && member_stripe_.count(s) == 0) {
        n++;
      }
    }
    return n;
  }
  bool channel_marked_failed(uint32_t ch) const {
    return ch < channel_failed_.size() && channel_failed_[ch];
  }

  // ---- Introspection (tests & benchmarks) ---------------------------------
  // What the last Open() did to rebuild state (RecoveryMode::kNone after
  // Format), including the typed checkpoint fallback ladder.
  const RecoveryReport& last_recovery() const { return last_recovery_; }
  const LldCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = LldCounters{}; }
  const LldOptions& options() const { return options_; }
  uint32_t num_segments() const { return usage_->num_segments(); }
  const UsageTable& usage_table() const { return *usage_; }
  const BlockMap& block_map() const { return block_map_; }
  const ListTable& list_table() const { return list_table_; }
  BlockDevice* device() { return device_; }
  DiskStats* device_stats() override { return device_->mutable_stats(); }
  void SetTenant(TenantId tenant) override {
    options_.tenant = tenant;
    device_->set_request_tenant(tenant);
  }
  // Walks list `lid` and returns its blocks in order.
  StatusOr<std::vector<Bid>> ListBlocks(Lid lid) const;
  MemoryFootprint MeasureMemory() const;
  // Fill fraction of the in-memory open segment's data area.
  double OpenSegmentFill() const;
  // True after an unrecoverable device write failure: LLD is read-only and
  // every mutating call returns a DEGRADED status (see DESIGN.md
  // "Failure model").
  bool degraded() const override { return degraded_; }
  // Byte addresses of a segment and of its summary region — introspection
  // for fault-injection tests and benches that damage precise locations.
  uint64_t SegmentStartByte(uint32_t segment) const { return SegmentBaseByte(segment); }
  uint64_t SegmentSummaryStartByte(uint32_t segment) const {
    return SegmentBaseByte(segment) + data_capacity_;
  }
  // Bytes of data a segment can hold.
  uint32_t SegmentDataCapacity() const { return data_capacity_; }
  // Byte addresses of the hardened A/B checkpoint region — introspection for
  // fault-injection tests that rot a specific slot's marker or payload.
  uint64_t CheckpointSlotBytes() const;
  uint64_t CheckpointSlotStartByte(uint32_t slot) const;
  uint64_t TotalDataCapacity() const {
    return static_cast<uint64_t>(data_capacity_) * usage_->num_segments();
  }

 private:
  LogStructuredDisk(BlockDevice* device, const LldOptions& options);

  // ---- Layout ------------------------------------------------------------
  Status ComputeLayout();
  uint64_t SegmentBaseByte(uint32_t segment) const;
  Status WriteSuperblock();
  Status ReadAndCheckSuperblock();
  // Last sector of the device: holds the superblock replica (the primary is
  // sector 0, channel 0 — a blank-spare swap there must not lose the volume).
  uint64_t SuperblockReplicaSector() const;

  // ---- Open-segment management --------------------------------------------
  // Ensures at least `data_bytes` of data space and room for `record_bytes`
  // of summary records, flushing the open segment (as full) if necessary.
  Status EnsureRoom(uint32_t data_bytes, size_t record_bytes);
  // Appends a record, flushing first if the summary area is full.
  Status AppendRecord(const SummaryRecord& record);
  // Appends all of one operation's records with a single room check so a
  // crash can never persist half of an operation's metadata. Also tags the
  // records with the current ARU.
  Status AppendRecordsAtomic(std::vector<SummaryRecord>* records);
  // Appends block data (already compressed if applicable) + its entry record.
  Status AppendBlockData(Bid bid, std::span<const uint8_t> stored, uint32_t orig_size,
                         bool compressed, bool internal);
  // Seals the open segment, submits it to the device asynchronously (double
  // buffering a fresh open segment), and resets the open state. The write is
  // not durable until WaitForInflight().
  Status FlushOpenSegmentFull();
  // Retires the oldest in-flight segment writes until at most
  // `max_outstanding` remain, advancing the clock to their completion and
  // performing deferred bookkeeping (scratch recycling, buffer reuse).
  Status ReapInflightTo(size_t max_outstanding);
  // Full barrier for the pipelined segment writes.
  Status WaitForInflight() { return ReapInflightTo(0); }
  // How many segment writes may be in flight at once: one per device
  // channel when pipelining (each striped to its own actuator), else one.
  size_t MaxInflight() const;
  // Writes the open segment to a scratch segment, keeping it open (§3.2).
  Status FlushOpenSegmentPartial();
  // Picks a free segment, running the cleaner when the pool is low.
  StatusOr<uint32_t> AllocateFreeSegment(bool allow_clean);
  // Free-segment choice that stripes consecutive picks round-robin across
  // the device's channels (first-free within the preferred channel's band);
  // degenerates to UsageTable::PickFree on single-channel devices.
  int64_t PickFreeSegmentStriped();
  // Serializes the current records into the summary area of `buffer`.
  Status BuildSummaryInto(std::span<uint8_t> buffer, uint32_t segment_index, uint64_t seq,
                          uint32_t data_bytes);

  // ---- Segment parity (segment_parity option) ------------------------------
  // XOR lane period for a segment whose largest stored block is `max_stored`:
  // one sector more than the sector-rounded block, so any sector-aligned
  // extent containing one block stays within a single lane period and is
  // therefore reconstructible.
  uint32_t ParityBytesFor(uint32_t max_stored) const;
  // Data-area bytes EnsureRoom must keep in reserve for the parity block
  // (alignment padding + lane period), given the largest stored block the
  // sealed segment would contain. 0 when parity is off or no data.
  uint32_t ParityReserve(uint32_t max_stored) const;
  // Computes the parity block over `buffer`'s data area ([0, data_used),
  // padded to the sector boundary), stores it in the buffer at the padded
  // offset, appends the kSegmentParity record, and reports the geometry in
  // `usage`. Returns false (leaving everything untouched) when the segment
  // carries no data or parity is off.
  bool AddSegmentParity(std::span<uint8_t> buffer, uint32_t data_used, uint32_t max_stored,
                        std::vector<SummaryRecord>* records, SegmentUsage* usage);
  // Rebuilds the bytes of the sector-aligned extent around
  // [offset, offset + out.size()) of `segment`'s data area from the
  // segment's parity block, writing just the requested byte range into
  // `out`. Fails (typed) when the segment has no parity, the parity block
  // itself is damaged, or a second extent of the covered area is unreadable.
  // The caller must verify the result against the block's original payload
  // CRC before trusting it.
  Status ReconstructExtent(uint32_t segment, uint32_t offset, std::span<uint8_t> out);
  // Read-path repair: reconstructs entry's stored bytes via parity, verifies
  // them against the entry's payload CRC, and relocates the repaired copy
  // through the log (skipped in degraded mode — the copy in `out` is still
  // returned). On success bumps blocks_reconstructed. On any failure returns
  // `damage` unchanged.
  Status TryReconstructStored(Bid bid, const BlockMapEntry& entry, std::span<uint8_t> out,
                              const Status& damage);

  // ---- Helpers -------------------------------------------------------------
  OpTimestamp NextTs() { return next_ts_++; }
  bool InAru() const { return current_aru_ != 0; }
  uint32_t RecordAruId() const { return current_aru_; }
  bool RecordEndsAru() const { return current_aru_ == 0; }
  // Releases the space held by a block's current copy (map must be current).
  void ReleaseBlockSpace(const BlockMapEntry& entry);
  // Marks `segment` as the authoritative holder of the latest on-disk copy
  // of each metadata record in `records` (see BlockMapEntry::link_seg).
  void UpdateRecordAuthority(uint32_t segment, const std::vector<SummaryRecord>& records);
  // Unlinks `bid` from its list using the predecessor hint; logs the update.
  Status UnlinkFromList(Bid bid, Lid lid, Bid pred_bid_hint);
  // Reads the stored bytes of an on-disk block copy.
  Status ReadStored(const BlockMapEntry& entry, std::span<uint8_t> out);
  // Marks LLD degraded after an unrecoverable device write failure and
  // returns the DEGRADED status mutating callers must surface.
  Status EnterDegradedMode(const Status& cause);
  // Routes a device write failure: IO_ERROR (the device lost the write even
  // after retries) degrades LLD; other failures pass through unchanged.
  Status HandleWriteFailure(const Status& s) {
    return s.code() == ErrorCode::kIoError ? EnterDegradedMode(s) : s;
  }
  // Shared guard for every mutating entry point.
  Status CheckWritable() const;
  // Wear accounting: a full or partial segment image was programmed into
  // `segment`. Bumps the segment's wear count and mirrors it into the
  // device's wear histogram (flash erase/rewrite accounting).
  void NoteSegmentImageWrite(uint32_t segment);
  // Charges (de)compression CPU time to the simulated clock.
  void ChargeCompressCpu(uint64_t bytes);
  void ChargeListCpu();
  void ChargeDecompressCpu(uint64_t bytes);
  uint64_t LiveBytes() const;

  // ---- Stripe parity internals (lld_stripe.cc) -----------------------------
  // One cross-channel stripe set: `members` (one sealed segment per distinct
  // channel) XOR to the image stored in `parity_segment`. `member_seqs`
  // snapshot each member's summary sequence at formation, so a reused
  // segment is never mistaken for the striped image. `record_segment` is the
  // segment whose summary currently holds the set's kStripeParity records
  // (the cleaner re-logs them when it reclaims that segment).
  struct StripeSet {
    uint32_t parity_segment = 0;
    std::vector<uint32_t> members;
    std::vector<uint64_t> member_seqs;
    uint32_t parity_crc = 0;       // 24-bit CRC of the parity segment image.
    uint32_t record_segment = 0;
  };
  bool StripeEnabled() const {
    return options_.stripe_parity && device_->num_channels() >= 2;
  }
  // Channel owning `segment` (by its first sector). Channel bands are
  // cylinder-aligned, not segment-aligned, so a segment whose byte range
  // crosses a band boundary lives on TWO adjacent channels —
  // SegmentLastChannel() reveals the other end, and placement or usability
  // decisions must consider the whole [first, last] span.
  uint32_t SegmentChannel(uint32_t segment) const;
  uint32_t SegmentLastChannel(uint32_t segment) const;
  bool SegmentOnChannel(uint32_t segment, uint32_t ch) const;
  // All channels the segment's span touches accept I/O.
  bool SegmentChannelsUsable(uint32_t segment) const;
  bool ChannelUsable(uint32_t ch) const {
    return ch >= channel_failed_.size() || !channel_failed_[ch];
  }
  // Reads a segment's full image (data area + summary tail).
  Status ReadSegmentImage(uint32_t segment, std::span<uint8_t> out);
  // Seal-time formation: if one unstriped kFull segment exists on every live
  // channel but one, forms a full-width stripe set whose records ride the
  // summary of `sealing_segment` (appended to open_records_); the parity
  // image is written after the sealing segment is submitted (see
  // pending_parity_). Best-effort: skips silently when capacity or segment
  // supply is short.
  Status MaybeFormStripes(uint32_t sealing_segment);
  // Shared formation core: XORs `members`' full images into `*image` (the
  // parity image for `parity_segment`) and returns the finished set (caller
  // appends records, writes the image, and registers).
  StatusOr<StripeSet> ComputeStripe(const std::vector<uint32_t>& members,
                                    uint32_t parity_segment, std::vector<uint8_t>* image);
  // Writes a computed parity image and registers its set in the maps.
  Status CommitStripe(StripeSet set, const std::vector<uint8_t>& parity_image);
  void RegisterStripe(StripeSet set);
  void EraseStripe(uint32_t parity_segment);
  // Appends the full kStripeParity record set of `set` to `records`.
  void AppendStripeRecords(const StripeSet& set, OpTimestamp ts,
                           std::vector<SummaryRecord>* records) const;
  // Dissolves every stripe touching a victim in `victims`: zeroes the parity
  // segment's summary region (so its later reuse can never read as a suspect
  // summary), strips re-logged records for the set from `batch_records`, and
  // appends the countermand (member count 0) record. The caller frees the
  // parity segment after the batch is durable via the returned list.
  StatusOr<std::vector<uint32_t>> DissolveStripesTouching(
      const std::vector<uint32_t>& victims, std::vector<SummaryRecord>* batch_records);
  // Second-tier read repair: reconstructs entry's stored bytes by XOR-ing
  // the sector-aligned extent across the N-1 surviving stripe peers and the
  // parity segment, verifies the result against the entry's payload CRC
  // (typed CORRUPTION on any second fault — peer unreadable or CRC
  // mismatch), relocates the repaired copy, and bumps the degraded-read
  // device stats. Returns `damage` unchanged when the block's segment is not
  // striped.
  Status TryStripeReconstructStored(Bid bid, const BlockMapEntry& entry,
                                    std::span<uint8_t> out, const Status& damage);
  // Rebuilds the channel allocation mask from channel_failed_ and installs /
  // clears it as the usage table's filter (composing with the checkpoint
  // window, which is disabled on channel failure).
  void InstallChannelFilter();
  void EnqueueRebuild(uint32_t segment);

  std::unordered_map<uint32_t, StripeSet> stripes_;       // By parity segment.
  std::unordered_map<uint32_t, uint32_t> member_stripe_;  // Member -> parity.
  std::vector<bool> channel_failed_;
  std::vector<uint8_t> channel_alloc_mask_;
  std::deque<uint32_t> rebuild_pending_;
  std::unordered_set<uint32_t> rebuild_queued_;
  // Accumulating report for the current rebuild cycle (see Rebuild): reset
  // when a call finds the previous cycle drained, carried across slices
  // otherwise.
  RebuildReport rebuild_report_;
  bool rebuild_cycle_active_ = false;
  // Round-robin cursor rotating parity placement across channels (RAID-5).
  uint32_t next_parity_channel_ = 0;
  // Re-entrancy guard: stripe formation and dissolution append records and
  // read segment images; a flush they trigger must not form again.
  bool forming_stripe_ = false;
  // Parity image computed at seal time, written right after the sealing
  // segment (whose summary carries the records) is submitted.
  struct PendingParity {
    StripeSet set;
    std::vector<uint8_t> image;
  };
  std::vector<PendingParity> pending_parity_;
  // A set's kStripeParity records ride ONE sealing segment's summary; if
  // that carrier's channel is later replaced by a blank spare, the set would
  // be undiscoverable at recovery (an all-zero summary reads as "never
  // written"). Each committed set therefore queues a duplicate of its
  // records here, and the next full seal — which channel rotation places on
  // a different channel — carries them, so every set stays declared on two
  // channels. Whole groups only: a partial duplicate would decode as a
  // malformed (missing-member) set and kill the stripe at recovery.
  std::vector<std::vector<SummaryRecord>> redeclare_groups_;

  // ---- Cleaner (lld_cleaner.cc) --------------------------------------------
  struct CleanedBlock {
    Bid bid = kNilBid;
    std::vector<uint8_t> stored;
    uint32_t orig_size = 0;
    bool compressed = false;
    // Non-zero when the source record belongs to a still-open ARU: the
    // copied entry must carry the same tag, or cleaning would smuggle
    // uncommitted data into the committed state.
    uint32_t aru_id = 0;
    // Payload CRC carried *verbatim* from the source record — never
    // recomputed from the copied bytes, so bytes that rotted before the
    // copy stay detectably corrupt instead of being laundered into a fresh
    // valid checksum.
    uint32_t payload_crc = 0;
    bool has_payload_crc = false;
  };
  // Live state harvested from one or more victim segments: current copies of
  // data blocks plus metadata records that must survive the segment's reuse
  // (link tuples, allocations, deletion tombstones), re-logged with fresh
  // timestamps. The paper's "removing old logging information" (§3.5).
  struct CleanerBatch {
    std::vector<CleanedBlock> blocks;
    std::vector<SummaryRecord> records;
  };
  // A victim's data-area read, deferred so the reads of a whole cleaning
  // round can go to the device as one async batch (they overlap across
  // channels instead of serializing). `slices` records which harvested
  // blocks carve their bytes out of `data` once the read completes.
  struct VictimDataRead {
    uint32_t victim = 0;
    std::vector<uint8_t> data;  // Sector-rounded used data area.
    struct Slice {
      size_t block_index = 0;  // Into CleanerBatch::blocks.
      uint32_t offset = 0;     // Byte offset of the block in `data`.
    };
    std::vector<Slice> slices;
  };
  // Decodes a victim's summary and appends its live blocks (bytes pending in
  // `*pending` until the batched read completes) and records to `batch`.
  Status HarvestVictim(uint32_t victim, CleanerBatch* batch, VictimDataRead* pending,
                       uint32_t* ext_live);
  // Sorts blocks into list order for cluster-on-clean.
  void OrderByLists(std::vector<CleanedBlock>* blocks);
  // Writes a batch into fresh segments through a dedicated writer (so victims
  // are only freed once their copies are durable).
  Status WriteCleanerBatch(CleanerBatch batch);

  // ---- Recovery & checkpoint (lld_recovery.cc) ------------------------------
  // Rebuilds the in-memory state on Open: checkpoint chain when one is
  // valid, log scan otherwise, populating last_recovery_.
  Status RecoverState();
  // One-sweep (optionally per-channel parallel) summary scan + replay.
  // `chain` is the loaded checkpoint chain to start from (null = none).
  struct LoadedChain;
  Status RecoverFromLog(const LoadedChain* chain);
  // Tries both A/B slots, newest generation first; fills *chain and the
  // chain-related fields of last_recovery_. A null result (chain->usable ==
  // false) means full log recovery.
  Status LoadCheckpointChain(LoadedChain* chain);
  // Clean-shutdown checkpoint: a base frame in the inactive slot. With
  // incremental checkpointing off this is the only checkpoint ever written.
  // Returns a typed NO_SPACE ("checkpoint oversize") when the encoded
  // payload outgrows the slot — observable via
  // DiskStats::checkpoints_skipped_oversize, never just a WARN line.
  Status WriteCheckpoint() { return WriteBaseFrame(/*clean=*/true); }
  Status WriteBaseFrame(bool clean);
  // Appends a delta frame covering ckpt_pending_ to the active slot (or
  // rebases into the other slot when the append would overflow). Called
  // every checkpoint_interval_segments seals and when the allocation window
  // runs low; `force` skips the interval check.
  Status MaybeWriteDeltaFrame(bool force);
  Status InvalidateCheckpoint();  // Invalidates both slot markers.
  // Turns incremental checkpointing off for this session after a condition
  // that would make the on-disk chain unsound (e.g. the allocation window
  // ran dry inside the cleaner): invalidates both slots so the next open
  // scans the log, and lifts the allocation filter.
  Status DisableIncrementalCheckpoints(const std::string& reason);
  // True when per-interval delta frames and windowed allocation are on.
  bool CheckpointingActive() const {
    return options_.checkpoint_interval_segments > 0 && !ckpt_disabled_;
  }
  // Records a sealed-and-durable segment's summary records for the next
  // delta frame (no-op unless CheckpointingActive()).
  void CaptureFrameSegment(uint32_t segment, uint64_t seq, const SegmentUsage& parity,
                           const std::vector<SummaryRecord>& records);
  // Records a scrub-retired segment (summary zeroed in place) for the next
  // delta frame, so chain replay does not resurrect it as kFull.
  void CaptureRetiredSegment(uint32_t segment);
  // Picks the next allocation window (striped round-robin across channels)
  // and installs it as the usage table's allocation filter.
  std::vector<uint32_t> BuildAllocationWindow() const;
  void InstallAllocationWindow(const std::vector<uint32_t>& window);
  uint32_t AllocationWindowTarget() const;
  // Serializes / restores the full-table base image (shared by the clean-
  // shutdown checkpoint and rebases).
  void EncodeBasePayload(std::vector<uint8_t>* payload) const;
  Status DecodeBasePayload(std::span<const uint8_t> payload);
  // Recomputes the usage table and free lists from the block map after
  // recovery or checkpoint load.
  void RebuildDerivedState(const std::vector<uint64_t>& segment_seqs,
                           const std::vector<bool>& segment_has_summary);

  BlockDevice* device_;
  LldOptions options_;
  // Retry shim all device accesses go through (sync and submit paths).
  ReliableIo io_;

  // Layout (derived from options + device).
  uint32_t data_capacity_ = 0;        // segment_bytes - summary_bytes.
  uint64_t data_start_byte_ = 0;      // First byte of segment 0.
  uint64_t checkpoint_start_byte_ = 0;
  uint64_t checkpoint_bytes_ = 0;

  BlockMap block_map_;
  ListTable list_table_;
  std::unique_ptr<UsageTable> usage_;

  // Open segment.
  std::vector<uint8_t> open_buffer_;
  uint32_t open_data_used_ = 0;
  uint32_t open_dead_bytes_ = 0;
  std::vector<SummaryRecord> open_records_;
  size_t open_record_bytes_ = 0;
  // (bid, offset, stored) appended since the segment opened, for relocation
  // at full flush.
  struct Appended {
    Bid bid;
    uint32_t offset;
    uint32_t stored;
  };
  std::vector<Appended> open_appended_;
  // Largest stored block in the open segment: sizes the parity lane period.
  uint32_t open_max_stored_ = 0;
  int64_t scratch_segment_ = -1;  // Holds the latest partial write, if any.

  // Pipelined segment writes (§3.3): a sealed segment's image moves into an
  // InflightWrite and is submitted asynchronously; open_buffer_ keeps
  // accepting writes (and the CPU that fills it — compression, list
  // maintenance — genuinely overlaps the in-flight disk writes). Up to
  // MaxInflight() writes are outstanding — one per device channel, each
  // striped to its own actuator — and ReapInflightTo() is the barrier.
  struct InflightWrite {
    std::vector<uint8_t> buffer;
    IoTag tag = kInvalidIoTag;
    // Scratch segment superseded by this full write: it may only be
    // recycled once the full image is durable, otherwise a crash between
    // the two writes could leave neither copy on disk.
    int64_t scratch_free = -1;
  };
  std::deque<InflightWrite> inflight_writes_;
  // Segment-sized buffers recycled from retired in-flight writes.
  std::vector<std::vector<uint8_t>> spare_buffers_;
  // Next channel the striped allocator prefers (round-robin cursor).
  uint32_t next_stripe_channel_ = 0;

  // Logical clocks.
  OpTimestamp next_ts_ = 1;
  uint64_t next_seq_ = 1;
  uint32_t next_aru_id_ = 1;
  uint32_t current_aru_ = 0;  // 0 = no ARU selected.
  std::unordered_set<uint32_t> open_arus_;
  // Units abandoned at runtime: their records must never be re-logged as
  // committed by the cleaner.
  std::unordered_set<uint32_t> abandoned_arus_;
  // Shadow pins held per open ARU: segments whose (in-memory dead) copies
  // are the last durably-committed versions of blocks this unit superseded
  // or freed. Pinned segments are ineligible cleaner victims — recycling one
  // and then crashing before the unit's commit record seals would destroy
  // the copy recovery rolls back to. On commit the pins move to
  // aru_pins_awaiting_seal_ (the commit record sits in the open segment
  // buffer and is only durable once that image is on media); the next full
  // or partial flush drains them. An abandoned unit's pins are kept for the
  // rest of the session: its superseded copies stay authoritative for every
  // future crash, and abandonment already demands a reopen.
  // Sentinel in the lists above for a superseded copy that still lives in
  // the *open* buffer: the full seal that writes the buffer out resolves it
  // to the real segment and takes the pin then. Sentinels that survive to
  // EndConcurrentARU need no pin at all — the copy and the unit's commit
  // record share the open buffer from that point on, so any image that
  // makes one durable makes both durable.
  static constexpr uint32_t kOpenCopyPin = UINT32_MAX;
  std::unordered_map<uint32_t, std::vector<uint32_t>> aru_shadow_segments_;
  std::vector<uint32_t> aru_pins_awaiting_seal_;

  uint64_t reserved_bytes_ = 0;
  bool shut_down_ = false;
  // Set when the device lost a write even after retries: the in-memory state
  // no longer converges to the on-disk log, so LLD stops mutating (reads
  // still work) rather than risk undefined behavior. See CheckWritable().
  bool degraded_ = false;
  std::string degraded_cause_;
  bool cleaning_ = false;         // Re-entrancy guard.
  // When >= 0, the cleaner's segment writer places its output as close to
  // this segment index as possible (used by RearrangeHotBlocks to center
  // the hot set); -1 = first-free placement.
  int64_t writer_placement_hint_ = -1;
  bool dirty_since_flush_ = false;

  // ---- Incremental-scrub state (lld_scrub.cc) ------------------------------
  // One scrub cycle walks the segment cursor across the volume in slices;
  // the report accumulates over the cycle and the whole struct resets when
  // the cursor wraps (or a monolithic Scrub() abandons the cycle).
  struct ScrubState {
    bool active = false;
    uint32_t cursor = 0;
    ScrubReport report;
  };
  ScrubState scrub_;

  LldCounters counters_;
  RecoveryReport last_recovery_;

  // ---- Incremental-checkpoint state (lld_recovery.cc) ----------------------
  // A/B slot bookkeeping for the active chain. `ckpt_generation_` is the
  // monotonic generation of the active slot's marker; frames append at the
  // sector-aligned offset `ckpt_payload_bytes_` and commit by rewriting the
  // marker (so a torn append is simply invisible).
  bool ckpt_disabled_ = false;       // DisableIncrementalCheckpoints fired.
  bool ckpt_have_chain_ = false;     // An active slot exists on disk.
  uint32_t ckpt_slot_ = 0;           // Active slot index (0/1).
  uint64_t ckpt_generation_ = 0;
  uint32_t ckpt_frame_count_ = 0;
  uint64_t ckpt_payload_bytes_ = 0;  // Sector-aligned bytes used in the slot.
  uint64_t ckpt_covered_seq_ = 0;    // Newest seq the chain covers.
  uint32_t ckpt_seals_since_frame_ = 0;
  // Durable segments sealed since the last frame, in seal order: the next
  // delta frame's payload.
  struct PendingFrameSegment {
    uint32_t segment = 0;
    uint64_t seq = 0;
    SegmentUsage parity;  // Only the parity fields are meaningful.
    std::vector<SummaryRecord> records;
  };
  std::vector<PendingFrameSegment> ckpt_pending_;
  // Segments retired (summary zeroed) since the last frame.
  std::vector<uint32_t> ckpt_retired_pending_;
  // Re-entrancy guard: frame writes flush the open segment, whose full-seal
  // hook would otherwise try to start another frame.
  bool ckpt_in_frame_write_ = false;
  // Allocation window of the latest durable frame (usage-table filter):
  // segment writes may only target masked segments, so recovery's scan is
  // bounded by the window instead of the volume.
  std::vector<uint8_t> ckpt_window_mask_;

  std::vector<uint8_t> io_scratch_;  // Reusable sector-aligned I/O buffer.
};

}  // namespace ld

#endif  // SRC_LLD_LLD_H_

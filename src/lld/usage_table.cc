#include "src/lld/usage_table.h"

#include <cassert>

namespace ld {

void UsageTable::AddLive(uint32_t index, uint32_t bytes, OpTimestamp ts) {
  AddLiveAged(index, bytes, ts, ts);
}

void UsageTable::AddLiveAged(uint32_t index, uint32_t bytes, OpTimestamp relog_ts,
                             OpTimestamp age) {
  SegmentUsage& s = segments_[index];
  s.live_bytes += bytes;
  if (relog_ts > s.newest_ts) {
    s.newest_ts = relog_ts;
  }
  if (age > s.age_ts) {
    s.age_ts = age;
  }
}

void UsageTable::RemoveLive(uint32_t index, uint32_t bytes) {
  SegmentUsage& s = segments_[index];
  assert(s.live_bytes >= bytes);
  s.live_bytes -= bytes;
}

uint32_t UsageTable::FreeCount() const {
  uint32_t count = 0;
  for (const auto& s : segments_) {
    if (s.state == SegmentState::kFree) {
      count++;
    }
  }
  return count;
}

uint64_t UsageTable::TotalLiveBytes() const {
  uint64_t total = 0;
  for (const auto& s : segments_) {
    total += s.live_bytes;
  }
  return total;
}

int64_t UsageTable::PickGreedy() const {
  int64_t best = -1;
  uint32_t best_live = 0;
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    const SegmentUsage& s = segments_[i];
    if (s.state != SegmentState::kFull || s.aru_pins > 0 || !Harvestable(i)) {
      continue;
    }
    if (best < 0 || s.live_bytes < best_live) {
      best = i;
      best_live = s.live_bytes;
    }
  }
  return best;
}

int64_t UsageTable::PickCostBenefit(uint32_t segment_capacity, OpTimestamp now) const {
  int64_t best = -1;
  double best_score = -1.0;
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    const SegmentUsage& s = segments_[i];
    if (s.state != SegmentState::kFull || s.aru_pins > 0 || !Harvestable(i)) {
      continue;
    }
    const double u = static_cast<double>(s.live_bytes) / segment_capacity;
    const OpTimestamp basis = s.age_ts != 0 ? s.age_ts : s.newest_ts;
    const double age = static_cast<double>(now - (basis < now ? basis : now)) + 1.0;
    const double score = (1.0 - u) * age / (1.0 + u);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

int64_t UsageTable::PickFree() const {
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].state == SegmentState::kFree && Allocatable(i)) {
      return i;
    }
  }
  return -1;
}

uint32_t UsageTable::AllocatableCount() const {
  uint32_t count = 0;
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].state == SegmentState::kFree && Allocatable(i)) {
      ++count;
    }
  }
  return count;
}

int64_t UsageTable::PickFreeNear(uint32_t target) const {
  int64_t best = -1;
  uint32_t best_distance = 0;
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].state != SegmentState::kFree || !Allocatable(i)) {
      continue;
    }
    const uint32_t distance = i > target ? i - target : target - i;
    if (best < 0 || distance < best_distance) {
      best = i;
      best_distance = distance;
    }
  }
  return best;
}

void UsageTable::Reset() {
  for (auto& s : segments_) {
    s = SegmentUsage{};
  }
}

}  // namespace ld

// The block-number map (paper Figure 2): for every logical block its
// physical address, its successor in its list, its length, and whether it is
// compressed. Kept entirely in main memory, exactly as the prototype LLD
// does; the memory-model in src/lld/memory_model.h accounts for its cost.

#ifndef SRC_LLD_BLOCK_MAP_H_
#define SRC_LLD_BLOCK_MAP_H_

#include <cstdint>
#include <vector>

#include "src/ld/types.h"
#include "src/util/status.h"

namespace ld {

// Physical location of a block's current copy: a segment index and a byte
// offset within the segment. Blocks living in the in-memory open segment use
// kOpenSegment as their segment index.
struct PhysAddr {
  static constexpr uint32_t kNone = 0xffffffffu;
  static constexpr uint32_t kOpenSegment = 0xfffffffeu;

  uint32_t segment = kNone;
  uint32_t offset = 0;

  bool IsNone() const { return segment == kNone; }
  bool IsOpen() const { return segment == kOpenSegment; }
  bool IsOnDisk() const { return segment < kOpenSegment; }

  bool operator==(const PhysAddr& other) const = default;
};

// Sentinel for "no on-disk record" in the authority fields below.
constexpr uint32_t kNoAuthoritySeg = 0xffffffffu;

struct BlockMapEntry {
  PhysAddr phys;                 // kNone until first written.
  Bid successor = kNilBid;       // Next block in the owning list.
  Lid list = kNilLid;            // Owning list.
  uint32_t size_class = 0;       // Logical block size in bytes.
  uint32_t stored_size = 0;      // Bytes occupied on disk (== size_class unless compressed).
  bool compressed = false;
  bool allocated = false;
  OpTimestamp write_ts = 0;      // Timestamp of the current copy.

  // 24-bit payload checksum (PayloadCrc of the stored bytes), mirrored from
  // the block's summary record so reads can verify without touching the
  // summary. Entries written before the checksum format extension have
  // has_payload_crc == false.
  uint32_t payload_crc = 0;
  bool has_payload_crc = false;

  // Record authority: which segment's summary holds the *latest* on-disk
  // link tuple / allocation record for this block. Only that segment's
  // cleaning re-logs the record; other segments' stale mentions are simply
  // dropped, which keeps the metadata-log mass bounded by the number of
  // live entities instead of growing with every cleaning pass.
  uint32_t link_seg = kNoAuthoritySeg;
  uint32_t alloc_seg = kNoAuthoritySeg;

  // Read-frequency estimate for the adaptive rearranger (§5.3); maintained
  // only when LldOptions::track_read_heat is set.
  uint32_t read_count = 0;
};

class BlockMap {
 public:
  BlockMap() = default;

  // Allocates a fresh Bid (never kNilBid), reusing freed numbers first.
  Bid Allocate(Lid list, uint32_t size_class);

  // Frees a Bid; its entry is reset and the number is recycled.
  Status Free(Bid bid);

  bool IsAllocated(Bid bid) const;

  // Entry accessors; the caller must ensure the bid is allocated.
  BlockMapEntry& entry(Bid bid) { return entries_[bid]; }
  const BlockMapEntry& entry(Bid bid) const { return entries_[bid]; }

  StatusOr<BlockMapEntry*> Lookup(Bid bid);
  StatusOr<const BlockMapEntry*> Lookup(Bid bid) const;

  // Number of allocated blocks.
  uint64_t allocated_count() const { return allocated_count_; }

  // Highest Bid ever allocated (for iteration: valid bids are 1..max_bid()).
  Bid max_bid() const { return static_cast<Bid>(entries_.size()) - 1; }

  // Re-registers a bid during recovery (entries may arrive out of order).
  // Grows the map as needed and marks the bid allocated.
  BlockMapEntry& EnsureAllocated(Bid bid);

  // Recovery-time deallocation: clears the entry without touching the free
  // list (RebuildFreeList runs afterwards). Tolerates replayed duplicates.
  void ForceFree(Bid bid);

  // Rebuilds the free-number list after recovery: every bid in
  // 1..max that is not allocated becomes free.
  void RebuildFreeList();

  // Bytes of in-memory data-structure footprint (for the memory benchmark).
  uint64_t MemoryBytes() const;

  void Clear();

 private:
  // entries_[0] is a dummy so Bid 0 stays reserved.
  std::vector<BlockMapEntry> entries_{1};
  std::vector<Bid> free_bids_;
  uint64_t allocated_count_ = 0;
};

}  // namespace ld

#endif  // SRC_LLD_BLOCK_MAP_H_

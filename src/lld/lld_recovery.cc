// Crash recovery and checkpointing (paper §3.6, extended with bounded
// recovery).
//
// The paper's LLD takes no checkpoints during normal operation: recovery
// reads every segment summary in one sweep, orders segments by write
// sequence number, and replays the records (ARU records apply only if their
// commit record is on disk). That behaviour is preserved verbatim with
// LldOptions::checkpoint_interval_segments == 0.
//
// With an interval set, the reserved checkpoint region becomes a hardened
// A/B pair of slots. Each slot holds a marker sector plus a chain of CRC'd
// frames: frame 0 is a *base* (a full snapshot of the in-memory tables) and
// later frames are *deltas* carrying the summary records of the segments
// sealed since the previous frame. Every frame also records the *allocation
// window* — the small set of free segments new writes are confined to until
// the next frame — so a crash-time open loads base + deltas and scans only
// the window: recovery time is bounded by log-written-since-checkpoint, not
// volume size. Delta appends write their frame first and commit by
// rewriting the marker (frame count + payload bytes), so a torn append is
// simply invisible; when a slot fills up the chain is compacted into a fresh
// base in the *other* slot under a higher generation (the old slot stays
// behind as a fallback).
//
// Damage never downgrades silently: recovery walks a typed ladder
// (RecoveryFallback) — intact newest chain → window scan; rotted trailing
// delta → valid prefix + full-scan merge; rotted marker or base → other
// slot + full-scan merge; nothing usable → full log recovery. A full-scan
// merge is always sound because any segment whose valid summary carries a
// sequence number beyond the chain's coverage is replayed regardless of
// window membership.

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "src/lld/lld.h"
#include "src/util/crc32.h"
#include "src/util/log.h"

namespace ld {

namespace {

// "LDC3": bumped from "LDC2" when the single-marker checkpoint region became
// the A/B slot pair with framed payloads. An old marker reads as *absent*
// (not rotted): the volume opens via log recovery, which handles every
// record layout.
constexpr uint32_t kSlotMagic = 0x4c444333;
constexpr uint32_t kLegacyCheckpointMagic = 0x4c444332;

// "LDCF": frame header magic.
constexpr uint32_t kFrameMagic = 0x4c444346;
constexpr uint8_t kFrameBase = 0;
constexpr uint8_t kFrameDelta = 1;
// magic + kind + generation + chain_index + covered_seq + body_len + crc.
constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 4 + 8 + 8 + 4;

uint64_t RoundUpTo(uint64_t v, uint64_t align) { return (v + align - 1) / align * align; }

struct SlotMarker {
  bool valid = false;
  bool clean = false;
  uint64_t generation = 0;
  uint32_t frame_count = 0;
  uint64_t payload_bytes = 0;  // Sector-aligned bytes of frames in the slot.
};

void EncodeMarker(const SlotMarker& m, uint32_t sector, std::vector<uint8_t>* out) {
  out->clear();
  Encoder enc(out);
  enc.PutU32(kSlotMagic);
  enc.PutU8(m.valid ? 1 : 0);
  enc.PutU8(m.clean ? 1 : 0);
  enc.PutU64(m.generation);
  enc.PutU32(m.frame_count);
  enc.PutU64(m.payload_bytes);
  enc.PutU32(Crc32(*out));
  out->resize(sector, 0);
}

// kAbsent covers blank media, legacy-format markers, and explicitly
// invalidated slots — shapes where "no checkpoint" is the truthful answer.
// kRejected means the sector holds damaged content: that is rot, and it
// must surface on the fallback ladder instead of masquerading as absence.
enum class MarkerState { kValid, kAbsent, kRejected };

MarkerState ParseMarker(std::span<const uint8_t> buf, SlotMarker* m) {
  Decoder dec(buf);
  const uint32_t magic = dec.GetU32();
  m->valid = dec.GetU8() != 0;
  m->clean = dec.GetU8() != 0;
  m->generation = dec.GetU64();
  m->frame_count = dec.GetU32();
  m->payload_bytes = dec.GetU64();
  const size_t crc_end = dec.position();
  const uint32_t crc = dec.GetU32();
  if (!dec.ok()) {
    return MarkerState::kRejected;
  }
  if (magic != kSlotMagic) {
    const bool all_zero =
        std::all_of(buf.begin(), buf.end(), [](uint8_t b) { return b == 0; });
    if (all_zero || magic == kLegacyCheckpointMagic) {
      return MarkerState::kAbsent;
    }
    return MarkerState::kRejected;
  }
  if (crc != Crc32(buf.subspan(0, crc_end))) {
    return MarkerState::kRejected;
  }
  return m->valid ? MarkerState::kValid : MarkerState::kAbsent;
}

// Frame bytes: [header | body | body crc], zero-padded to a sector multiple.
std::vector<uint8_t> BuildFrame(uint8_t kind, uint64_t generation, uint32_t chain_index,
                                uint64_t covered_seq, std::span<const uint8_t> body,
                                uint32_t sector) {
  std::vector<uint8_t> frame;
  frame.reserve(RoundUpTo(kFrameHeaderBytes + body.size() + 4, sector));
  Encoder enc(&frame);
  enc.PutU32(kFrameMagic);
  enc.PutU8(kind);
  enc.PutU64(generation);
  enc.PutU32(chain_index);
  enc.PutU64(covered_seq);
  enc.PutU64(body.size());
  enc.PutU32(Crc32(frame));  // Header CRC over everything before it.
  enc.PutBytes(body);
  enc.PutU32(Crc32(body));
  frame.resize(RoundUpTo(frame.size(), sector), 0);
  return frame;
}

// Restores a re-entrancy flag on scope exit (frame writes flush the open
// segment, whose seal hook would otherwise try to start another frame).
struct FlagGuard {
  bool* flag;
  bool prev;
  FlagGuard(bool* f) : flag(f), prev(*f) { *f = true; }
  ~FlagGuard() { *flag = prev; }
};

}  // namespace

// The in-memory image of the newest usable checkpoint chain: the base
// snapshot, the delta operations in frame order, and the last frame's
// allocation window.
struct LogStructuredDisk::LoadedChain {
  bool usable = false;
  bool clean = false;      // Newest frame is a clean-shutdown base.
  bool full_scan = false;  // Chain incomplete/older: scan the whole log.
  uint32_t slot = 0;
  uint64_t generation = 0;
  uint64_t covered_seq = 0;
  std::vector<uint8_t> base_payload;
  std::vector<uint32_t> window;  // Last valid frame's allocation window.
  struct ChainSegment {
    uint32_t index = 0;
    uint64_t seq = 0;
    SegmentUsage parity;  // Only the parity fields are meaningful.
    std::vector<SummaryRecord> records;
  };
  // Delta operations in frame order; within a frame, seals precede retires.
  struct ChainOp {
    bool retire = false;
    uint32_t retired_segment = 0;
    ChainSegment seg;
  };
  std::vector<ChainOp> ops;
  uint32_t chain_segments = 0;
};

// ---- Slot geometry ----------------------------------------------------------

uint64_t LogStructuredDisk::CheckpointSlotBytes() const {
  const uint32_t sector = device_->sector_size();
  return (checkpoint_bytes_ / 2) / sector * sector;
}

uint64_t LogStructuredDisk::CheckpointSlotStartByte(uint32_t slot) const {
  return checkpoint_start_byte_ + slot * CheckpointSlotBytes();
}

// ---- Allocation window ------------------------------------------------------

uint32_t LogStructuredDisk::AllocationWindowTarget() const {
  // Enough for the seals of one interval, two cleaner rounds, the pipeline's
  // in-flight writes, and slack — so frames are driven by the interval, not
  // by window exhaustion.
  return options_.checkpoint_interval_segments + 2 * options_.segments_per_clean +
         static_cast<uint32_t>(MaxInflight()) + 8;
}

std::vector<uint32_t> LogStructuredDisk::BuildAllocationWindow() const {
  const uint32_t target = AllocationWindowTarget();
  const uint32_t n = usage_->num_segments();
  const uint32_t channels = std::max<uint32_t>(1, device_->num_channels());
  const uint32_t band = std::max<uint32_t>(1, n / channels);
  std::vector<uint32_t> window;
  window.reserve(target + 1);
  // Round-robin across the channel bands so both the confined writes and the
  // recovery scan of the window spread over every actuator.
  std::vector<uint32_t> cursor(channels, 0);
  bool progress = true;
  while (window.size() < target && progress) {
    progress = false;
    for (uint32_t c = 0; c < channels && window.size() < target; ++c) {
      const uint32_t start = c * band;
      const uint32_t end = (c + 1 == channels) ? n : std::min(n, (c + 1) * band);
      for (uint32_t& cur = cursor[c]; start + cur < end;) {
        const uint32_t s = start + cur;
        ++cur;
        if (usage_->segment(s).state == SegmentState::kFree) {
          window.push_back(s);
          progress = true;
          break;
        }
      }
    }
  }
  // The live scratch segment keeps absorbing partial flushes after the frame
  // is written, so the window must always cover it.
  if (scratch_segment_ >= 0) {
    window.push_back(static_cast<uint32_t>(scratch_segment_));
  }
  return window;
}

void LogStructuredDisk::InstallAllocationWindow(const std::vector<uint32_t>& window) {
  ckpt_window_mask_.assign(usage_->num_segments(), 0);
  for (uint32_t s : window) {
    if (s < ckpt_window_mask_.size()) {
      ckpt_window_mask_[s] = 1;
    }
  }
  usage_->SetAllocFilter(&ckpt_window_mask_);
}

// ---- Frame capture ----------------------------------------------------------

void LogStructuredDisk::CaptureFrameSegment(uint32_t segment, uint64_t seq,
                                            const SegmentUsage& parity,
                                            const std::vector<SummaryRecord>& records) {
  if (!CheckpointingActive()) {
    return;
  }
  // A re-flushed scratch (or a freed-and-resealed segment) supersedes its
  // previous capture: only the newest summary is on the media.
  for (auto it = ckpt_pending_.begin(); it != ckpt_pending_.end(); ++it) {
    if (it->segment == segment) {
      ckpt_pending_.erase(it);
      break;
    }
  }
  PendingFrameSegment p;
  p.segment = segment;
  p.seq = seq;
  p.parity = parity;
  p.records = records;
  ckpt_pending_.push_back(std::move(p));
  ckpt_seals_since_frame_++;
}

void LogStructuredDisk::CaptureRetiredSegment(uint32_t segment) {
  if (!CheckpointingActive()) {
    return;
  }
  for (auto it = ckpt_pending_.begin(); it != ckpt_pending_.end(); ++it) {
    if (it->segment == segment) {
      ckpt_pending_.erase(it);
      break;
    }
  }
  ckpt_retired_pending_.push_back(segment);
}

// ---- Base payload (full-table snapshot) -------------------------------------

void LogStructuredDisk::EncodeBasePayload(std::vector<uint8_t>* payload) const {
  Encoder enc(payload);
  enc.PutU64(next_ts_);
  enc.PutU64(next_seq_);
  enc.PutU32(next_aru_id_);

  // Block map: only allocated entries.
  enc.PutU64(block_map_.allocated_count());
  for (Bid bid = 1; bid <= block_map_.max_bid(); ++bid) {
    if (!block_map_.IsAllocated(bid)) {
      continue;
    }
    const BlockMapEntry& e = block_map_.entry(bid);
    enc.PutU32(bid);
    enc.PutU32(e.phys.segment);
    enc.PutU32(e.phys.offset);
    enc.PutU32(e.successor);
    enc.PutU32(e.list);
    enc.PutU32(e.size_class);
    enc.PutU32(e.stored_size);
    enc.PutU8(e.compressed ? 1 : 0);
    enc.PutU64(e.write_ts);
    enc.PutU32(e.link_seg);
    enc.PutU32(e.alloc_seg);
    enc.PutU32(e.payload_crc);
    enc.PutU8(e.has_payload_crc ? 1 : 0);
  }

  // List table.
  enc.PutU64(list_table_.allocated_count());
  for (Lid lid = 1; lid <= list_table_.max_lid(); ++lid) {
    if (!list_table_.IsAllocated(lid)) {
      continue;
    }
    const ListEntry& e = list_table_.entry(lid);
    enc.PutU32(lid);
    enc.PutU32(e.first);
    enc.PutU8(static_cast<uint8_t>((e.hints.cluster ? 1 : 0) | (e.hints.compress ? 2 : 0) |
                                   (e.hints.interlist_cluster ? 4 : 0)));
    enc.PutU32(e.lol_next);
    enc.PutU32(e.head_seg);
    enc.PutU32(e.create_seg);
  }

  // Usage table.
  enc.PutU32(usage_->num_segments());
  for (uint32_t s = 0; s < usage_->num_segments(); ++s) {
    const SegmentUsage& u = usage_->segment(s);
    enc.PutU8(static_cast<uint8_t>(u.state));
    enc.PutU32(u.live_bytes);
    enc.PutU64(u.newest_ts);
    enc.PutU64(u.seq);
    enc.PutU8(u.has_parity ? 1 : 0);
    enc.PutU32(u.parity_offset);
    enc.PutU32(u.parity_bytes);
    enc.PutU32(u.parity_covered);
    enc.PutU32(u.parity_crc);
  }

  // Stripe sets, appended only when any exist: a stripe-less volume's base
  // payload stays byte-identical to the pre-stripe layout (and a pre-stripe
  // reader simply has no trailing bytes to misread).
  if (!stripes_.empty()) {
    std::vector<uint32_t> order;
    order.reserve(stripes_.size());
    for (const auto& [p, set] : stripes_) {
      order.push_back(p);
    }
    std::sort(order.begin(), order.end());
    enc.PutU32(static_cast<uint32_t>(order.size()));
    for (uint32_t p : order) {
      const StripeSet& set = stripes_.at(p);
      enc.PutU32(p);
      enc.PutU32(set.record_segment);
      enc.PutU32(set.parity_crc);
      enc.PutU32(static_cast<uint32_t>(set.members.size()));
      for (size_t i = 0; i < set.members.size(); ++i) {
        enc.PutU32(set.members[i]);
        enc.PutU64(set.member_seqs[i]);
      }
    }
  }
}

Status LogStructuredDisk::DecodeBasePayload(std::span<const uint8_t> payload) {
  stripes_.clear();
  member_stripe_.clear();
  Decoder dec(payload);
  next_ts_ = dec.GetU64();
  next_seq_ = dec.GetU64();
  next_aru_id_ = dec.GetU32();

  block_map_.Clear();
  const uint64_t block_count = dec.GetU64();
  for (uint64_t i = 0; i < block_count; ++i) {
    const Bid bid = dec.GetU32();
    if (!dec.ok()) {
      return CorruptionError("checkpoint block map truncated");
    }
    BlockMapEntry& e = block_map_.EnsureAllocated(bid);
    e.phys.segment = dec.GetU32();
    e.phys.offset = dec.GetU32();
    e.successor = dec.GetU32();
    e.list = dec.GetU32();
    e.size_class = dec.GetU32();
    e.stored_size = dec.GetU32();
    e.compressed = dec.GetU8() != 0;
    e.write_ts = dec.GetU64();
    e.link_seg = dec.GetU32();
    e.alloc_seg = dec.GetU32();
    e.payload_crc = dec.GetU32();
    e.has_payload_crc = dec.GetU8() != 0;
  }

  list_table_.Clear();
  const uint64_t list_count = dec.GetU64();
  for (uint64_t i = 0; i < list_count; ++i) {
    const Lid lid = dec.GetU32();
    if (!dec.ok()) {
      return CorruptionError("checkpoint list table truncated");
    }
    ListEntry& e = list_table_.EnsureAllocated(lid);
    e.first = dec.GetU32();
    const uint8_t hints = dec.GetU8();
    e.hints.cluster = (hints & 1) != 0;
    e.hints.compress = (hints & 2) != 0;
    e.hints.interlist_cluster = (hints & 4) != 0;
    e.lol_next = dec.GetU32();
    e.head_seg = dec.GetU32();
    e.create_seg = dec.GetU32();
  }

  const uint32_t seg_count = dec.GetU32();
  if (seg_count != usage_->num_segments()) {
    return CorruptionError("checkpoint segment count mismatch");
  }
  for (uint32_t s = 0; s < seg_count; ++s) {
    SegmentUsage& u = usage_->segment(s);
    u.state = static_cast<SegmentState>(dec.GetU8());
    u.live_bytes = dec.GetU32();
    u.newest_ts = dec.GetU64();
    u.seq = dec.GetU64();
    u.has_parity = dec.GetU8() != 0;
    u.parity_offset = dec.GetU32();
    u.parity_bytes = dec.GetU32();
    u.parity_covered = dec.GetU32();
    u.parity_crc = dec.GetU32();
    // A scratch segment cannot survive a base frame (bases flush full), and
    // a mid-clean segment still holds its data.
    if (u.state == SegmentState::kScratch) {
      u.state = SegmentState::kFree;
    } else if (u.state == SegmentState::kCleaning) {
      u.state = SegmentState::kFull;
    }
  }

  // Optional trailing stripe section (bases written before stripes existed,
  // or with none live, end right here).
  if (dec.ok() && dec.position() < payload.size()) {
    const uint32_t stripe_count = dec.GetU32();
    if (!dec.ok() || stripe_count > seg_count) {
      return CorruptionError("checkpoint stripe section truncated");
    }
    for (uint32_t i = 0; i < stripe_count; ++i) {
      StripeSet set;
      set.parity_segment = dec.GetU32();
      set.record_segment = dec.GetU32();
      set.parity_crc = dec.GetU32();
      const uint32_t member_count = dec.GetU32();
      if (!dec.ok() || set.parity_segment >= seg_count || member_count == 0 ||
          member_count > seg_count) {
        return CorruptionError("checkpoint stripe section invalid");
      }
      set.members.reserve(member_count);
      set.member_seqs.reserve(member_count);
      for (uint32_t j = 0; j < member_count; ++j) {
        const uint32_t m = dec.GetU32();
        const uint64_t seq = dec.GetU64();
        if (!dec.ok() || m >= seg_count) {
          return CorruptionError("checkpoint stripe member invalid");
        }
        set.members.push_back(m);
        set.member_seqs.push_back(seq);
      }
      RegisterStripe(std::move(set));
    }
  }
  RETURN_IF_ERROR(dec.ToStatus("checkpoint payload"));

  block_map_.RebuildFreeList();
  list_table_.RebuildFreeList();
  list_table_.RelinkListOfLists();
  return OkStatus();
}

// ---- Frame writers ----------------------------------------------------------

Status LogStructuredDisk::WriteBaseFrame(bool clean) {
  FlagGuard in_frame(&ckpt_in_frame_write_);

  // A base frame is a snapshot of the in-memory tables: everything sealed
  // must be durable and nothing may sit in the open segment (open-segment
  // blocks carry unserializable in-memory addresses).
  if (open_data_used_ > 0 || !open_records_.empty()) {
    RETURN_IF_ERROR(FlushOpenSegmentFull());
  }
  RETURN_IF_ERROR(WaitForInflight());

  const uint32_t sector = device_->sector_size();
  std::vector<uint32_t> window;
  std::vector<uint8_t> body;
  Encoder enc(&body);
  if (CheckpointingActive()) {
    window = BuildAllocationWindow();
  }
  enc.PutU32(static_cast<uint32_t>(window.size()));
  for (uint32_t s : window) {
    enc.PutU32(s);
  }
  EncodeBasePayload(&body);

  const uint64_t covered = next_seq_ - 1;
  const uint32_t target = ckpt_have_chain_ ? (1 - ckpt_slot_) : ckpt_slot_;
  const uint64_t generation = ckpt_generation_ + 1;
  std::vector<uint8_t> frame = BuildFrame(kFrameBase, generation, 0, covered, body, sector);
  const uint64_t capacity = CheckpointSlotBytes() - sector;
  if (frame.size() > capacity) {
    device_->mutable_stats()->checkpoints_skipped_oversize++;
    const std::string msg = "checkpoint oversize: base frame of " +
                            std::to_string(frame.size()) + " bytes exceeds the " +
                            std::to_string(capacity) + "-byte slot";
    if (CheckpointingActive()) {
      RETURN_IF_ERROR(DisableIncrementalCheckpoints(msg));
    } else {
      RETURN_IF_ERROR(InvalidateCheckpoint());
    }
    return NoSpaceError(msg);
  }

  const uint64_t slot_start = CheckpointSlotStartByte(target);
  RETURN_IF_ERROR(io_.Write((slot_start + sector) / sector, frame));

  // Marker written last: its single-sector write commits the new chain. The
  // other slot keeps the previous chain as the fallback rung.
  SlotMarker m;
  m.valid = true;
  m.clean = clean;
  m.generation = generation;
  m.frame_count = 1;
  m.payload_bytes = frame.size();
  std::vector<uint8_t> marker;
  EncodeMarker(m, sector, &marker);
  RETURN_IF_ERROR(io_.Write(slot_start / sector, marker));

  ckpt_have_chain_ = true;
  ckpt_slot_ = target;
  ckpt_generation_ = generation;
  ckpt_frame_count_ = 1;
  ckpt_payload_bytes_ = frame.size();
  ckpt_covered_seq_ = covered;
  ckpt_seals_since_frame_ = 0;
  ckpt_pending_.clear();
  ckpt_retired_pending_.clear();
  counters_.checkpoint_frames_written++;
  if (CheckpointingActive()) {
    InstallAllocationWindow(window);
  }
  return OkStatus();
}

Status LogStructuredDisk::MaybeWriteDeltaFrame(bool force) {
  if (!CheckpointingActive() || ckpt_in_frame_write_ || cleaning_ || !ckpt_have_chain_) {
    return OkStatus();
  }
  if (!force && ckpt_seals_since_frame_ < options_.checkpoint_interval_segments) {
    return OkStatus();
  }
  if (!force && ckpt_pending_.empty() && ckpt_retired_pending_.empty()) {
    return OkStatus();
  }
  FlagGuard in_frame(&ckpt_in_frame_write_);

  // The frame covers its segments' sequence numbers, so those segment writes
  // must be on the media before the marker says so.
  RETURN_IF_ERROR(WaitForInflight());

  const uint32_t sector = device_->sector_size();
  const std::vector<uint32_t> window = BuildAllocationWindow();
  uint64_t covered = ckpt_covered_seq_;
  for (const PendingFrameSegment& p : ckpt_pending_) {
    covered = std::max(covered, p.seq);
  }

  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU32(static_cast<uint32_t>(window.size()));
  for (uint32_t s : window) {
    enc.PutU32(s);
  }
  enc.PutU32(static_cast<uint32_t>(ckpt_retired_pending_.size()));
  for (uint32_t s : ckpt_retired_pending_) {
    enc.PutU32(s);
  }
  enc.PutU32(static_cast<uint32_t>(ckpt_pending_.size()));
  for (const PendingFrameSegment& p : ckpt_pending_) {
    enc.PutU32(p.segment);
    enc.PutU64(p.seq);
    enc.PutU8(p.parity.has_parity ? 1 : 0);
    enc.PutU32(p.parity.parity_offset);
    enc.PutU32(p.parity.parity_bytes);
    enc.PutU32(p.parity.parity_covered);
    enc.PutU32(p.parity.parity_crc);
    enc.PutU32(static_cast<uint32_t>(p.records.size()));
    for (const SummaryRecord& r : p.records) {
      r.EncodeTo(&enc);
    }
  }

  std::vector<uint8_t> frame =
      BuildFrame(kFrameDelta, ckpt_generation_, ckpt_frame_count_, covered, body, sector);
  const uint64_t capacity = CheckpointSlotBytes() - sector;
  if (ckpt_payload_bytes_ + frame.size() > capacity) {
    // Slot full: compact the chain into a fresh base in the other slot. A
    // base is a table snapshot, so it must not embed the effects of ARUs
    // that might still abort.
    if (!open_arus_.empty()) {
      return DisableIncrementalCheckpoints(
          "checkpoint slot full while ARUs are open; cannot rebase");
    }
    counters_.checkpoint_rebases++;
    return WriteBaseFrame(/*clean=*/false);
  }

  const uint64_t slot_start = CheckpointSlotStartByte(ckpt_slot_);
  RETURN_IF_ERROR(io_.Write((slot_start + sector + ckpt_payload_bytes_) / sector, frame));

  SlotMarker m;
  m.valid = true;
  m.clean = false;
  m.generation = ckpt_generation_;
  m.frame_count = ckpt_frame_count_ + 1;
  m.payload_bytes = ckpt_payload_bytes_ + frame.size();
  std::vector<uint8_t> marker;
  EncodeMarker(m, sector, &marker);
  RETURN_IF_ERROR(io_.Write(slot_start / sector, marker));

  ckpt_frame_count_++;
  ckpt_payload_bytes_ += frame.size();
  ckpt_covered_seq_ = covered;
  ckpt_seals_since_frame_ = 0;
  ckpt_pending_.clear();
  ckpt_retired_pending_.clear();
  counters_.checkpoint_frames_written++;
  InstallAllocationWindow(window);
  return OkStatus();
}

StatusOr<bool> LogStructuredDisk::CheckpointStep() {
  RETURN_IF_ERROR(CheckWritable());
  if (!CheckpointFrameDue()) {
    return false;
  }
  // A due frame can still come back without writing (slot rebase refusal
  // with open ARUs degrades to disabled checkpoints, which is not an
  // error); report progress from the counter, not from the call succeeding.
  const uint64_t before = counters_.checkpoint_frames_written;
  RETURN_IF_ERROR(MaybeWriteDeltaFrame(/*force=*/false));
  return counters_.checkpoint_frames_written > before;
}

Status LogStructuredDisk::InvalidateCheckpoint() {
  const uint32_t sector = device_->sector_size();
  SlotMarker m;  // valid = false.
  std::vector<uint8_t> marker;
  for (uint32_t slot = 0; slot < 2; ++slot) {
    EncodeMarker(m, sector, &marker);
    RETURN_IF_ERROR(io_.Write(CheckpointSlotStartByte(slot) / sector, marker));
  }
  ckpt_have_chain_ = false;
  ckpt_frame_count_ = 0;
  ckpt_payload_bytes_ = 0;
  ckpt_covered_seq_ = 0;
  ckpt_seals_since_frame_ = 0;
  ckpt_pending_.clear();
  ckpt_retired_pending_.clear();
  return OkStatus();
}

Status LogStructuredDisk::DisableIncrementalCheckpoints(const std::string& reason) {
  if (ckpt_disabled_) {
    return OkStatus();
  }
  LD_LOG(kWarn) << "incremental checkpointing disabled: " << reason
                << "; the next open will recover from the log";
  ckpt_disabled_ = true;
  usage_->SetAllocFilter(nullptr);
  return InvalidateCheckpoint();
}

// ---- Chain loading ----------------------------------------------------------

Status LogStructuredDisk::LoadCheckpointChain(LoadedChain* chain) {
  *chain = LoadedChain{};
  const uint32_t sector = device_->sector_size();
  const uint64_t capacity = CheckpointSlotBytes() - sector;
  const uint32_t num_segments = usage_->num_segments();

  struct Candidate {
    uint32_t slot = 0;
    SlotMarker marker;
  };
  std::vector<Candidate> candidates;
  uint32_t rejected = 0;
  uint64_t max_generation = 0;
  for (uint32_t slot = 0; slot < 2; ++slot) {
    std::vector<uint8_t> buf(sector);
    if (Status s = io_.Read(CheckpointSlotStartByte(slot) / sector, buf); !s.ok()) {
      if (s.code() != ErrorCode::kIoError) {
        return s;
      }
      rejected++;
      continue;
    }
    SlotMarker m;
    switch (ParseMarker(buf, &m)) {
      case MarkerState::kValid:
        max_generation = std::max(max_generation, m.generation);
        if (m.frame_count == 0 || m.payload_bytes > capacity) {
          rejected++;  // Impossible shape under a passing CRC: treat as rot.
          break;
        }
        candidates.push_back({slot, m});
        break;
      case MarkerState::kAbsent:
        max_generation = std::max(max_generation, m.generation);
        break;
      case MarkerState::kRejected:
        rejected++;
        break;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.marker.generation > b.marker.generation;
            });

  // Parses one slot's frame chain. Returns true when the base frame (frame
  // 0) was valid — the chain is then usable, possibly with a dropped tail.
  auto parse_slot = [&](const Candidate& cand, LoadedChain* out, uint32_t* frames_loaded,
                        uint32_t* frames_dropped) -> bool {
    const uint64_t payload_start = CheckpointSlotStartByte(cand.slot) + sector;
    uint64_t offset = 0;
    for (uint32_t i = 0; i < cand.marker.frame_count; ++i) {
      bool frame_ok = false;
      do {
        if (offset + sector > capacity) {
          break;
        }
        std::vector<uint8_t> head(sector);
        if (!io_.Read((payload_start + offset) / sector, head).ok()) {
          break;
        }
        Decoder hd(head);
        const uint32_t magic = hd.GetU32();
        const uint8_t kind = hd.GetU8();
        const uint64_t generation = hd.GetU64();
        const uint32_t chain_index = hd.GetU32();
        const uint64_t covered_seq = hd.GetU64();
        const uint64_t body_len = hd.GetU64();
        const size_t crc_end = hd.position();
        const uint32_t header_crc = hd.GetU32();
        if (!hd.ok() || magic != kFrameMagic ||
            header_crc != Crc32(std::span<const uint8_t>(head).subspan(0, crc_end))) {
          break;
        }
        if (generation != cand.marker.generation || chain_index != i ||
            kind != (i == 0 ? kFrameBase : kFrameDelta)) {
          break;
        }
        const uint64_t total = RoundUpTo(kFrameHeaderBytes + body_len + 4, sector);
        if (body_len > capacity || offset + total > capacity ||
            offset + total > cand.marker.payload_bytes) {
          break;
        }
        std::vector<uint8_t> raw(total);
        if (!io_.Read((payload_start + offset) / sector, raw).ok()) {
          break;
        }
        std::span<const uint8_t> body(raw.data() + kFrameHeaderBytes, body_len);
        Decoder crc_dec(
            std::span<const uint8_t>(raw.data() + kFrameHeaderBytes + body_len, 4));
        if (crc_dec.GetU32() != Crc32(body)) {
          break;
        }

        Decoder dec(body);
        const uint32_t window_count = dec.GetU32();
        if (!dec.ok() || window_count > num_segments + 1) {
          break;
        }
        std::vector<uint32_t> window(window_count);
        for (uint32_t j = 0; j < window_count; ++j) {
          window[j] = dec.GetU32();
        }
        if (i == 0) {
          if (!dec.ok()) {
            break;
          }
          out->base_payload.assign(body.begin() + dec.position(), body.end());
        } else {
          const uint32_t retired_count = dec.GetU32();
          if (!dec.ok() || retired_count > num_segments) {
            break;
          }
          std::vector<uint32_t> retired(retired_count);
          for (uint32_t j = 0; j < retired_count; ++j) {
            retired[j] = dec.GetU32();
          }
          const uint32_t seg_count = dec.GetU32();
          if (!dec.ok() || seg_count > num_segments) {
            break;
          }
          std::vector<LoadedChain::ChainSegment> segs;
          segs.reserve(seg_count);
          bool bad = false;
          for (uint32_t j = 0; j < seg_count && !bad; ++j) {
            LoadedChain::ChainSegment cs;
            cs.index = dec.GetU32();
            cs.seq = dec.GetU64();
            cs.parity.has_parity = dec.GetU8() != 0;
            cs.parity.parity_offset = dec.GetU32();
            cs.parity.parity_bytes = dec.GetU32();
            cs.parity.parity_covered = dec.GetU32();
            cs.parity.parity_crc = dec.GetU32();
            const uint32_t record_count = dec.GetU32();
            if (!dec.ok() || cs.index >= num_segments ||
                record_count > options_.summary_bytes + data_capacity_) {
              bad = true;
              break;
            }
            cs.records.reserve(record_count);
            for (uint32_t k = 0; k < record_count; ++k) {
              StatusOr<SummaryRecord> r = SummaryRecord::DecodeFrom(&dec);
              if (!r.ok()) {
                bad = true;
                break;
              }
              cs.records.push_back(std::move(*r));
            }
            if (!bad) {
              segs.push_back(std::move(cs));
            }
          }
          if (bad || !dec.ok()) {
            break;
          }
          // Commit the parsed frame: seals first, then retires.
          for (LoadedChain::ChainSegment& cs : segs) {
            LoadedChain::ChainOp op;
            op.seg = std::move(cs);
            out->ops.push_back(std::move(op));
            out->chain_segments++;
          }
          for (uint32_t s : retired) {
            LoadedChain::ChainOp op;
            op.retire = true;
            op.retired_segment = s;
            out->ops.push_back(std::move(op));
          }
        }
        out->window = std::move(window);
        out->covered_seq = covered_seq;
        offset += total;
        (*frames_loaded)++;
        frame_ok = true;
      } while (false);
      if (!frame_ok) {
        *frames_dropped = cand.marker.frame_count - i;
        return i > 0;  // Usable iff the base survived.
      }
    }
    return true;
  };

  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    LoadedChain parsed;
    parsed.slot = candidates[ci].slot;
    parsed.generation = candidates[ci].marker.generation;
    parsed.clean = candidates[ci].marker.clean;
    uint32_t frames_loaded = 0;
    uint32_t frames_dropped = 0;
    if (!parse_slot(candidates[ci], &parsed, &frames_loaded, &frames_dropped)) {
      // Marker was fine but the base frame rotted: this slot is unusable.
      LD_LOG(kWarn) << "checkpoint slot " << candidates[ci].slot
                    << " rejected: base frame invalid (generation "
                    << candidates[ci].marker.generation << ")";
      rejected++;
      continue;
    }
    parsed.usable = true;
    // Window-only recovery is sound only for the *newest* chain taken whole:
    // a dropped tail or a skipped/rotted slot means writes may exist outside
    // this chain's window, so merge with a full summary scan.
    parsed.full_scan = frames_dropped > 0 || ci > 0 || rejected > 0;
    if (ci > 0 || rejected > 0) {
      last_recovery_.fallback_reason = RecoveryFallback::kSlotFallback;
    } else if (frames_dropped > 0) {
      last_recovery_.fallback_reason = RecoveryFallback::kDeltaTailDropped;
    }
    if (frames_dropped > 0) {
      LD_LOG(kWarn) << "checkpoint chain in slot " << parsed.slot << ": dropped "
                    << frames_dropped << " trailing frame(s); merging with a full scan";
    }
    last_recovery_.frames_loaded = frames_loaded;
    last_recovery_.frames_dropped = frames_dropped;
    last_recovery_.slots_rejected = rejected;
    last_recovery_.chain_segments = parsed.chain_segments;
    last_recovery_.covered_seq = parsed.covered_seq;
    *chain = std::move(parsed);
    break;
  }
  if (!chain->usable) {
    last_recovery_.slots_rejected = rejected;
    if (rejected > 0) {
      // There *was* checkpoint state and it rotted away: the bottom rung.
      last_recovery_.fallback_reason = RecoveryFallback::kCheckpointLost;
      LD_LOG(kWarn) << "no usable checkpoint chain (" << rejected
                    << " slot(s) rejected); full log recovery";
    }
  }

  // Session bookkeeping: the next base frame must out-generation everything
  // seen on the media, and land in the slot not holding the chain we loaded.
  ckpt_generation_ = std::max(max_generation,
                              chain->usable ? chain->generation : uint64_t{0});
  ckpt_slot_ = chain->usable ? chain->slot : 0;
  ckpt_have_chain_ = chain->usable;
  return OkStatus();
}

// ---- Recovery ---------------------------------------------------------------

Status LogStructuredDisk::RecoverState() {
  const double start = device_->clock()->Now();
  last_recovery_ = RecoveryReport{};

  LoadedChain chain;
  RETURN_IF_ERROR(LoadCheckpointChain(&chain));
  RETURN_IF_ERROR(RecoverFromLog(chain.usable ? &chain : nullptr));

  // Lifecycle. The paper's checkpoint-free mode invalidates the marker on
  // every startup, so only clean-shutdown → clean-startup skips recovery.
  // Incremental mode instead opens a fresh epoch: a new base frame in the
  // other slot, with a new allocation window confining writes.
  if (options_.checkpoint_interval_segments == 0) {
    RETURN_IF_ERROR(InvalidateCheckpoint());
  } else if (!ckpt_disabled_) {
    Status base = WriteBaseFrame(/*clean=*/false);
    if (!base.ok() && base.code() != ErrorCode::kNoSpace) {
      return base;
    }
    // Oversize base: typed, counted, and checkpointing is already disabled —
    // the open itself still succeeds (log recovery covers the session).
  }

  last_recovery_.checkpoints_skipped_oversize =
      device_->mutable_stats()->checkpoints_skipped_oversize;
  last_recovery_.live_blocks = block_map_.allocated_count();
  last_recovery_.seconds = device_->clock()->Now() - start;
  return OkStatus();
}

Status LogStructuredDisk::RecoverFromLog(const LoadedChain* chain) {
  const uint32_t sector = device_->sector_size();
  const uint32_t num_segments = usage_->num_segments();
  RecoveryReport& rep = last_recovery_;

  // ---- Seed from the chain (or from zero) ----
  std::vector<uint64_t> segment_seqs(num_segments, 0);
  std::vector<bool> has_summary(num_segments, false);
  struct ParityInfo {
    bool has = false;
    uint32_t offset = 0, bytes = 0, covered = 0, crc = 0;
  };
  std::vector<ParityInfo> parity(num_segments);

  bool have_chain = chain != nullptr;
  if (have_chain) {
    if (Status base = DecodeBasePayload(chain->base_payload); !base.ok()) {
      // The CRC passed but the snapshot does not parse (e.g. a geometry
      // change): treat like a rotted slot, never fail the open over it.
      LD_LOG(kWarn) << "checkpoint base unusable (" << base.message()
                    << "); full log recovery";
      have_chain = false;
      ckpt_have_chain_ = false;
      stripes_.clear();
      member_stripe_.clear();
      rep.slots_rejected++;
      rep.fallback_reason = RecoveryFallback::kCheckpointLost;
      rep.frames_loaded = 0;
      rep.frames_dropped = 0;
      rep.chain_segments = 0;
      rep.covered_seq = 0;
    }
  }
  uint64_t covered_seq = 0;

  struct ScannedSegment {
    uint32_t index = 0;
    uint64_t seq = 0;
    std::vector<SummaryRecord> records;
  };
  // Chain delta segments and scanned segments, merged and replayed together
  // in sequence order (so ARU gating sees the union).
  std::vector<ScannedSegment> replay;

  if (have_chain) {
    covered_seq = chain->covered_seq;
    for (uint32_t s = 0; s < num_segments; ++s) {
      const SegmentUsage& u = usage_->segment(s);
      if (u.state == SegmentState::kFull) {
        has_summary[s] = true;
        segment_seqs[s] = u.seq;
        if (u.has_parity) {
          parity[s] = {true, u.parity_offset, u.parity_bytes, u.parity_covered, u.parity_crc};
        }
      }
    }
    for (const LoadedChain::ChainOp& op : chain->ops) {
      if (op.retire) {
        if (op.retired_segment < num_segments) {
          has_summary[op.retired_segment] = false;
          segment_seqs[op.retired_segment] = 0;
          parity[op.retired_segment] = ParityInfo{};
        }
        continue;
      }
      const LoadedChain::ChainSegment& cs = op.seg;
      has_summary[cs.index] = true;
      segment_seqs[cs.index] = cs.seq;
      parity[cs.index] = {cs.parity.has_parity, cs.parity.parity_offset,
                          cs.parity.parity_bytes, cs.parity.parity_covered,
                          cs.parity.parity_crc};
      replay.push_back({cs.index, cs.seq, cs.records});
    }
  } else {
    block_map_.Clear();
    list_table_.Clear();
  }

  // ---- Choose the scan scope ----
  const bool clean_load = have_chain && chain->clean && !chain->full_scan;
  std::vector<uint32_t> to_scan;
  if (clean_load) {
    // Clean shutdown with an intact newest chain: the tables are total.
  } else if (have_chain && !chain->full_scan) {
    // Intact newest chain: every post-checkpoint write is confined to the
    // last frame's allocation window. This is the bounded scan.
    std::vector<bool> seen(num_segments, false);
    for (uint32_t s : chain->window) {
      if (s < num_segments && !seen[s]) {
        seen[s] = true;
        to_scan.push_back(s);
      }
    }
    std::sort(to_scan.begin(), to_scan.end());
  } else {
    to_scan.resize(num_segments);
    for (uint32_t s = 0; s < num_segments; ++s) {
      to_scan[s] = s;
    }
  }

  // ---- The sweep ----
  struct SuspectSegment {
    uint32_t index = 0;
    bool seq_known = false;
    uint64_t claimed_seq = 0;
    bool unreadable = false;  // I/O error (vs. failed validation).
  };
  std::vector<SuspectSegment> suspects;
  std::vector<ScannedSegment> scanned;

  // Validates one summary image and classifies the segment. Identical for
  // the serial and parallel sweeps: parallelism only reorders the device
  // reads, never the classification (which runs in segment order).
  auto process = [&](uint32_t seg, std::span<const uint8_t> summary) -> Status {
    SummaryHeader header;
    const Status head = DecodeSummaryHeader(summary, &header);
    if (head.code() == ErrorCode::kNotFound) {
      // No magic. An untouched (or scrub-retired) summary region is all
      // zeros; any other content means the magic itself was damaged.
      const bool all_zero =
          std::all_of(summary.begin(), summary.end(), [](uint8_t b) { return b == 0; });
      if (!all_zero) {
        suspects.push_back({seg, false, 0, false});
      }
      return OkStatus();  // Never written.
    }
    if (!head.ok() || header.ext_bytes > data_capacity_ || header.segment_index != seg) {
      suspects.push_back({seg, false, 0, false});
      return OkStatus();
    }
    // Record-heavy segments spill records into the end of their data area.
    std::vector<uint8_t> ext;
    if (header.ext_bytes > 0) {
      const uint64_t ext_start = data_capacity_ - header.ext_bytes;
      const uint64_t first = (SegmentBaseByte(seg) + ext_start) / sector * sector;
      const uint64_t end = SegmentBaseByte(seg) + data_capacity_;
      std::vector<uint8_t> raw((end - first + sector - 1) / sector * sector);
      if (Status s = io_.Read(first / sector, raw); !s.ok()) {
        if (s.code() != ErrorCode::kIoError) {
          return s;
        }
        suspects.push_back({seg, true, header.seq, /*unreadable=*/true});
        return OkStatus();
      }
      const size_t skip = (SegmentBaseByte(seg) + ext_start) - first;
      ext.assign(raw.begin() + skip, raw.begin() + skip + header.ext_bytes);
    }
    std::vector<SummaryRecord> records;
    const Status decode = DecodeSummary(summary, ext, &header, &records);
    if (!decode.ok()) {
      suspects.push_back({seg, true, header.seq, false});
      return OkStatus();
    }
    rep.summaries_valid++;
    if (have_chain && header.seq <= covered_seq) {
      // Stale: the chain already accounts for this segment (it was freed, or
      // its records are covered). The chain is authoritative.
      return OkStatus();
    }
    has_summary[seg] = true;
    scanned.push_back(ScannedSegment{seg, header.seq, std::move(records)});
    return OkStatus();
  };

  const uint32_t channels = std::max<uint32_t>(1, device_->num_channels());
  const bool parallel = options_.parallel_recovery_scan && to_scan.size() > 1;
  rep.parallel_scan = parallel;
  rep.scan_channels = parallel ? channels : 1;

  if (parallel) {
    // Fan the fixed-location summary reads out through the async request
    // queue in waves, so each channel's arm streams its own band while the
    // others seek; decode and classification stay in segment order.
    const size_t wave = static_cast<size_t>(channels) * 4;
    std::vector<std::vector<uint8_t>> bufs(wave, std::vector<uint8_t>(options_.summary_bytes));
    struct Pending {
      uint32_t seg = 0;
      IoTag tag = kInvalidIoTag;
      bool failed = false;
    };
    std::vector<Pending> pending(wave);
    for (size_t base = 0; base < to_scan.size(); base += wave) {
      const size_t n = std::min(wave, to_scan.size() - base);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t seg = to_scan[base + i];
        rep.summaries_scanned++;
        StatusOr<IoTag> tag =
            io_.SubmitRead((SegmentBaseByte(seg) + data_capacity_) / sector, bufs[i]);
        if (!tag.ok()) {
          if (tag.status().code() != ErrorCode::kIoError) {
            return tag.status();
          }
          pending[i] = {seg, kInvalidIoTag, true};
          continue;
        }
        pending[i] = {seg, *tag, false};
      }
      for (size_t i = 0; i < n; ++i) {
        if (!pending[i].failed && pending[i].tag != kInvalidIoTag) {
          RETURN_IF_ERROR(device_->WaitFor(pending[i].tag));
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (pending[i].failed) {
          suspects.push_back({pending[i].seg, false, 0, /*unreadable=*/true});
          continue;
        }
        RETURN_IF_ERROR(process(pending[i].seg, bufs[i]));
      }
    }
  } else {
    std::vector<uint8_t> summary(options_.summary_bytes);
    for (uint32_t seg : to_scan) {
      rep.summaries_scanned++;
      if (Status s = io_.Read((SegmentBaseByte(seg) + data_capacity_) / sector, summary);
          !s.ok()) {
        if (s.code() != ErrorCode::kIoError) {
          return s;
        }
        suspects.push_back({seg, false, 0, /*unreadable=*/true});
        continue;
      }
      RETURN_IF_ERROR(process(seg, summary));
    }
  }

  // ---- Stripe parity sets (pre-pass before suspect classification) ----
  //
  // kStripeParity records describe cross-channel stripe sets: one record per
  // member, keyed by the parity segment, a member-count of zero being the
  // dissolve countermand. The newest record set per parity segment wins in
  // sequence order; the base snapshot's decoded sets sit beneath every
  // logged record. A net-live parity segment holds an XOR image whose
  // summary region is expected garbage (an odd member count even leaves a
  // valid-looking magic over a failing CRC), so it must leave the suspect
  // ladder — unless its own media decodes as a fully valid summary NEWER
  // than the records, which proves them stale (media wins). Members of a
  // net-live set that lost their summaries (a dead or blank-swapped channel)
  // are rebuilt here, image and all, from the N-1 surviving peers plus
  // parity; any second fault along the way refuses the open, typed.
  struct StripeNet {
    uint64_t seq = 0;  // Seq of the summary that carried the record set.
    uint32_t record_segment = 0;
    uint32_t member_count = 0;  // 0 = dissolved.
    uint32_t parity_crc = 0;
    std::vector<uint32_t> members;
    std::vector<uint64_t> member_seqs;
  };
  std::unordered_map<uint32_t, StripeNet> stripe_net;
  std::unordered_set<uint32_t> stripe_channels_touched;
  if (!clean_load) {
    for (const auto& [p, set] : stripes_) {
      StripeNet net;
      net.record_segment = set.record_segment;
      net.member_count = static_cast<uint32_t>(set.members.size());
      net.parity_crc = set.parity_crc;
      net.members = set.members;
      net.member_seqs = set.member_seqs;
      stripe_net.emplace(p, std::move(net));
    }
    stripes_.clear();
    member_stripe_.clear();

    auto absorb = [&](const ScannedSegment& seg) {
      for (const auto& r : seg.records) {
        if (r.type != SummaryRecordType::kStripeParity) {
          continue;
        }
        StripeNet& net = stripe_net[r.offset];
        const uint32_t count = r.orig_size;
        if (seg.seq < net.seq) {
          continue;
        }
        if (seg.seq > net.seq || count != net.member_count || count == 0) {
          net = StripeNet{};
          net.seq = seg.seq;
          net.member_count = count;
          net.parity_crc = r.payload_crc;
          net.members.assign(count, UINT32_MAX);
          net.member_seqs.assign(count, 0);
        }
        net.record_segment = seg.index;
        if (count == 0 || r.stored_size >= count) {
          continue;
        }
        net.members[r.stored_size] = r.bid;
        net.member_seqs[r.stored_size] = r.intent_seq;
      }
    };
    for (const auto& seg : replay) {
      absorb(seg);
    }
    for (const auto& seg : scanned) {
      absorb(seg);
    }

    std::unordered_map<uint32_t, uint64_t> scanned_seqs;
    for (const auto& seg : scanned) {
      scanned_seqs.emplace(seg.index, seg.seq);
    }

    // Prune: dissolved sets, sets with impossible shapes (a torn crash can
    // never produce one — the records ride a single CRC'd summary — but a
    // leaked dissolve can strand nonsense), and media-wins conflicts.
    for (auto it = stripe_net.begin(); it != stripe_net.end();) {
      const uint32_t p = it->first;
      StripeNet& net = it->second;
      bool dead = net.member_count == 0 || p >= num_segments;
      for (size_t i = 0; !dead && i < net.members.size(); ++i) {
        const uint32_t m = net.members[i];
        dead = m == UINT32_MAX || m >= num_segments || m == p;
      }
      if (!dead) {
        if (const auto ps = scanned_seqs.find(p);
            ps != scanned_seqs.end() && ps->second > net.seq) {
          // Media wins: the parity segment's own summary out-sequences the
          // stripe records — the set is stale and the segment is live data.
          dead = true;
        }
      }
      if (dead) {
        it = stripe_net.erase(it);
      } else {
        ++it;
      }
    }

    if (!stripe_net.empty()) {
      suspects.erase(std::remove_if(suspects.begin(), suspects.end(),
                                    [&](const SuspectSegment& s) {
                                      return stripe_net.count(s.index) != 0;
                                    }),
                     suspects.end());
      for (const auto& [p, net] : stripe_net) {
        // The XOR image is not a summary, whatever the chain seed or a
        // stale media decode claimed.
        has_summary[p] = false;
        segment_seqs[p] = 0;
      }
    }

    auto reconstruct_member = [&](uint32_t p, const StripeNet& net,
                                  uint32_t idx) -> Status {
      const uint32_t m = net.members[idx];
      const auto fault = [&](const std::string& what) {
        return CorruptionError("recovery: stripe member " + std::to_string(m) +
                               " (parity segment " + std::to_string(p) + "): " + what +
                               " (double fault)");
      };
      std::vector<uint8_t> image(options_.segment_bytes);
      if (Status s = ReadSegmentImage(p, image); !s.ok()) {
        if (s.code() != ErrorCode::kIoError) {
          return s;
        }
        return fault("parity image unreadable: " + s.ToString());
      }
      if (PayloadCrc(image) != net.parity_crc) {
        return fault("parity image fails its recorded crc");
      }
      std::vector<uint8_t> peer(options_.segment_bytes);
      for (size_t j = 0; j < net.members.size(); ++j) {
        if (j == idx) {
          continue;
        }
        if (Status s = ReadSegmentImage(net.members[j], peer); !s.ok()) {
          if (s.code() != ErrorCode::kIoError) {
            return s;
          }
          return fault("stripe peer " + std::to_string(net.members[j]) +
                       " unreadable: " + s.ToString());
        }
        for (size_t b = 0; b < image.size(); ++b) {
          image[b] ^= peer[b];
        }
      }
      // `image` is now the lost member; its summary must decode at exactly
      // the recorded seal.
      const std::span<const uint8_t> tail(image.data() + data_capacity_,
                                          options_.summary_bytes);
      SummaryHeader header;
      const Status head = DecodeSummaryHeader(tail, &header);
      if (!head.ok() || header.segment_index != m ||
          header.seq != net.member_seqs[idx] || header.ext_bytes > data_capacity_) {
        return fault("reconstructed summary does not match the recorded seal");
      }
      const std::span<const uint8_t> ext(
          image.data() + data_capacity_ - header.ext_bytes, header.ext_bytes);
      std::vector<SummaryRecord> records;
      if (Status s = DecodeSummary(tail, ext, &header, &records); !s.ok()) {
        return fault("reconstructed summary does not decode: " + s.ToString());
      }
      has_summary[m] = true;
      scanned.push_back(ScannedSegment{m, header.seq, std::move(records)});
      scanned_seqs.emplace(m, header.seq);
      suspects.erase(std::remove_if(
                         suspects.begin(), suspects.end(),
                         [&](const SuspectSegment& s) { return s.index == m; }),
                     suspects.end());
      rep.stripe_members_reconstructed++;
      for (uint32_t c = SegmentChannel(m); c <= SegmentLastChannel(m); ++c) {
        stripe_channels_touched.insert(c);
      }
      // Re-materialize the media copy when the channel can take it; a failed
      // or withheld write leaves the segment for Rebuild() to lay down.
      bool wrote = false;
      if (SegmentChannelsUsable(m)) {
        if (Status s = io_.Write(SegmentBaseByte(m) / sector, image); s.ok()) {
          wrote = true;
        } else if (s.code() != ErrorCode::kIoError) {
          return s;
        } else {
          LD_LOG(kWarn) << "recovery: write-back of reconstructed stripe member "
                        << m << " failed: " << s.ToString();
        }
      }
      if (!wrote) {
        EnqueueRebuild(m);
      }
      LD_LOG(kInfo) << "recovery: reconstructed stripe member " << m
                    << " from parity segment " << p
                    << (wrote ? "" : " (media copy deferred to rebuild)");
      return OkStatus();
    };

    std::vector<uint32_t> stale_parity;
    for (auto it = stripe_net.begin(); it != stripe_net.end();) {
      const uint32_t p = it->first;
      StripeNet& net = it->second;
      bool stale = false;
      std::vector<uint32_t> missing;
      for (uint32_t i = 0; i < net.member_count; ++i) {
        const uint32_t m = net.members[i];
        if (const auto ms = scanned_seqs.find(m); ms != scanned_seqs.end()) {
          if (ms->second != net.member_seqs[i]) {
            stale = true;
          }
        } else if (has_summary[m]) {
          if (segment_seqs[m] != net.member_seqs[i]) {
            stale = true;
          }
        } else {
          missing.push_back(i);
        }
      }
      if (stale) {
        // A dissolve that could not log its countermand (the parity channel
        // was down at dissolve time) leaks its records; a member resealed
        // since proves the set dead. The parity segment is ordinary free
        // space — scrub its garbage summary region below.
        stale_parity.push_back(p);
        it = stripe_net.erase(it);
        continue;
      }
      for (uint32_t i : missing) {
        RETURN_IF_ERROR(reconstruct_member(p, net, i));
      }
      ++it;
    }
    for (uint32_t p : stale_parity) {
      if (!SegmentChannelsUsable(p)) {
        continue;
      }
      std::vector<uint8_t> zeros(options_.summary_bytes, 0);
      if (Status s = io_.Write(SegmentSummaryStartByte(p) / sector, zeros);
          !s.ok() && s.code() != ErrorCode::kIoError) {
        return s;
      }
    }
  }

  // Scrub intents: a kScrubIntent record says "segment X (whose retired
  // summary carried seq S) has been fully relocated; its summary is garbage
  // awaiting the zeroing write". Gathered from the chain *and* the scan.
  std::unordered_map<uint32_t, uint64_t> intent_seqs;  // segment -> newest intent seq
  for (const auto& seg : replay) {
    for (const auto& r : seg.records) {
      if (r.type == SummaryRecordType::kScrubIntent) {
        uint64_t& newest = intent_seqs[r.bid];
        newest = std::max(newest, r.intent_seq);
      }
    }
  }
  for (const auto& seg : scanned) {
    for (const auto& r : seg.records) {
      if (r.type == SummaryRecordType::kScrubIntent) {
        uint64_t& newest = intent_seqs[r.bid];
        newest = std::max(newest, r.intent_seq);
      }
    }
  }

  // Classify the suspects. Segments hit the device in seq order, so the
  // durable valid summaries always form a seq prefix of the log: a suspect
  // claiming a seq beyond the prefix was in flight at the crash and is
  // discarded like any torn write; one the chain proves stale is tolerated;
  // one inside the committed prefix is media corruption and is refused
  // (typed) unless a logged scrub intent vouches for its retirement.
  uint64_t max_valid_seq = covered_seq;
  for (const auto& seg : scanned) {
    max_valid_seq = std::max(max_valid_seq, seg.seq);
  }
  Status corrupt_log = OkStatus();
  for (const auto& s : suspects) {
    if (s.seq_known && s.claimed_seq > max_valid_seq) {
      // In flight at the crash: discarding it yields the consistent prefix.
      LD_LOG(kInfo) << "recovery: ignoring torn segment " << s.index;
      continue;
    }
    if (have_chain && s.seq_known && s.claimed_seq <= covered_seq) {
      // Damaged but provably stale: the chain covers everything up to
      // covered_seq, so nothing in this summary is the latest word. A
      // chain-less scan would have had to refuse this as CORRUPTION.
      rep.stale_damage_tolerated++;
      LD_LOG(kInfo) << "recovery: tolerating stale damaged summary on segment " << s.index
                    << " (seq " << s.claimed_seq << " <= covered " << covered_seq << ")";
      continue;
    }
    if (auto it = intent_seqs.find(s.index);
        it != intent_seqs.end() && (!s.seq_known || s.claimed_seq <= it->second)) {
      // Covered by a scrub intent: the scrub already relocated everything
      // live here before logging the intent, so complete the interrupted
      // retirement — zero the summary and let the segment come back free. A
      // summary too damaged to claim a seq is covered too (the intent is the
      // only witness left); a *newer* seq than the intent means the segment
      // was reused after retirement and the damage is fresh, so the intent
      // must not retire it — fall through to the refusal below.
      LD_LOG(kInfo) << "recovery: completing scrub retirement of segment " << s.index;
      std::vector<uint8_t> zeros(options_.summary_bytes, 0);
      RETURN_IF_ERROR(io_.Write(SegmentSummaryStartByte(s.index) / sector, zeros));
      rep.retirements_completed++;
      continue;
    }
    if (s.unreadable) {
      rep.summaries_unreadable++;
    } else {
      rep.summaries_corrupt++;
    }
    LD_LOG(kWarn) << "recovery: segment " << s.index << " summary "
                  << (s.unreadable ? "unreadable" : "corrupt") << " inside the committed log";
    if (corrupt_log.ok()) {
      corrupt_log = CorruptionError(
          "recovery: segment " + std::to_string(s.index) + " summary " +
          (s.unreadable ? "unreadable" : "corrupt") +
          " inside the committed log; refusing to resurrect stale state");
    }
  }
  RETURN_IF_ERROR(corrupt_log);

  // ---- Replay in write order (chain deltas ∪ scanned) ----
  for (auto& seg : scanned) {
    replay.push_back(std::move(seg));
  }
  std::sort(replay.begin(), replay.end(),
            [](const ScannedSegment& a, const ScannedSegment& b) { return a.seq < b.seq; });

  // Pass 1: which ARUs committed?
  std::unordered_set<uint32_t> committed;
  for (const auto& seg : replay) {
    for (const auto& r : seg.records) {
      if (r.type == SummaryRecordType::kAruCommit) {
        committed.insert(r.aru_id);
      }
    }
  }

  // Pass 2: apply.
  uint64_t max_ts = 0;
  uint64_t max_seq = 0;
  uint32_t max_aru = 0;
  for (const auto& seg : replay) {
    max_seq = std::max(max_seq, seg.seq);
    for (const auto& r : seg.records) {
      max_ts = std::max(max_ts, r.ts);
      max_aru = std::max(max_aru, r.aru_id);
      if (r.aru_id != 0 && committed.count(r.aru_id) == 0) {
        rep.records_dropped_uncommitted++;
        continue;
      }
      rep.records_applied++;
      switch (r.type) {
        case SummaryRecordType::kBlockAlloc: {
          BlockMapEntry& e = block_map_.EnsureAllocated(r.bid);
          e.list = r.lid;
          e.size_class = r.orig_size;
          e.alloc_seg = seg.index;
          break;
        }
        case SummaryRecordType::kBlockEntry: {
          BlockMapEntry& e = block_map_.EnsureAllocated(r.bid);
          if (!r.has_payload_crc) {
            // CRC-bearing entries store the checksum where the legacy
            // layout kept the list id; the list comes from kBlockAlloc.
            e.list = r.lid;
          }
          e.size_class = r.orig_size;
          e.phys = PhysAddr{seg.index, r.offset};
          e.stored_size = r.stored_size;
          e.compressed = r.compressed;
          e.write_ts = r.ts;
          e.payload_crc = r.payload_crc;
          e.has_payload_crc = r.has_payload_crc;
          break;
        }
        case SummaryRecordType::kLinkTuple: {
          BlockMapEntry& e = block_map_.EnsureAllocated(r.bid);
          e.successor = r.link_to;
          e.link_seg = seg.index;
          break;
        }
        case SummaryRecordType::kBlockFree:
          block_map_.ForceFree(r.bid);
          break;
        case SummaryRecordType::kListHead: {
          ListEntry& e = list_table_.EnsureAllocated(r.lid);
          e.first = r.link_to;
          e.head_seg = seg.index;
          break;
        }
        case SummaryRecordType::kListCreate: {
          ListEntry& e = list_table_.EnsureAllocated(r.lid);
          e.hints = r.hints;
          e.lol_next = r.lol_next;
          e.create_seg = seg.index;
          break;
        }
        case SummaryRecordType::kListMove: {
          ListEntry& e = list_table_.EnsureAllocated(r.lid);
          e.lol_next = r.lol_next;
          e.create_seg = seg.index;
          break;
        }
        case SummaryRecordType::kListDelete:
          list_table_.ForceFree(r.lid);
          break;
        case SummaryRecordType::kAruCommit:
          break;
        case SummaryRecordType::kSegmentParity: {
          if (has_summary[seg.index]) {
            ParityInfo& p = parity[seg.index];
            p.has = true;
            p.offset = r.offset;
            p.bytes = r.stored_size;
            p.covered = r.orig_size;
            p.crc = r.payload_crc;
          }
          break;
        }
        case SummaryRecordType::kScrubIntent:
          break;  // Consumed above, during suspect classification.
        case SummaryRecordType::kStripeParity:
          break;  // Consumed above, in the stripe net-state pre-pass.
      }
    }
  }
  for (const auto& seg : scanned) {
    segment_seqs[seg.index] = seg.seq;
  }

  // A chain base carries its own clocks; the replayed tail only advances them.
  next_ts_ = std::max(next_ts_, max_ts + 1);
  next_seq_ = std::max(next_seq_, max_seq + 1);
  next_aru_id_ = std::max(next_aru_id_, max_aru + 1);

  rep.mode = clean_load ? RecoveryMode::kCheckpointClean
                        : (have_chain ? RecoveryMode::kCheckpointChain : RecoveryMode::kLogScan);
  rep.used_checkpoint = have_chain;

  if (clean_load) {
    // The decoded tables are the total state (the base snapshot already has
    // exact live counts); nothing to rebuild.
    return OkStatus();
  }

  block_map_.RebuildFreeList();
  list_table_.RebuildFreeList();
  list_table_.RelinkListOfLists();
  RebuildDerivedState(segment_seqs, has_summary);
  for (uint32_t s = 0; s < num_segments; ++s) {
    if (parity[s].has && has_summary[s]) {
      SegmentUsage& u = usage_->segment(s);
      u.has_parity = true;
      u.parity_offset = parity[s].offset;
      u.parity_bytes = parity[s].bytes;
      u.parity_covered = parity[s].covered;
      u.parity_crc = parity[s].crc;
    }
  }

  // Surviving stripe sets come back online: every member stands at its
  // recorded seal (the pre-pass reconstructed the lost ones or refused the
  // open), so each parity segment resumes kParity and degraded reads /
  // rebuild see the set. When leaked records leave overlapping sets, the
  // newer set wins and the older parity reverts to free space.
  if (!stripe_net.empty()) {
    std::vector<uint32_t> order;
    order.reserve(stripe_net.size());
    for (const auto& [p, net] : stripe_net) {
      order.push_back(p);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const StripeNet& na = stripe_net.at(a);
      const StripeNet& nb = stripe_net.at(b);
      return na.seq != nb.seq ? na.seq > nb.seq : a < b;
    });
    for (uint32_t p : order) {
      const StripeNet& net = stripe_net.at(p);
      bool ok = usage_->segment(p).state == SegmentState::kFree;
      for (uint32_t i = 0; ok && i < net.member_count; ++i) {
        const uint32_t m = net.members[i];
        ok = has_summary[m] && segment_seqs[m] == net.member_seqs[i] &&
             usage_->segment(m).state == SegmentState::kFull &&
             member_stripe_.count(m) == 0;
      }
      if (!ok) {
        if (SegmentChannelsUsable(p) &&
            usage_->segment(p).state == SegmentState::kFree) {
          std::vector<uint8_t> zeros(options_.summary_bytes, 0);
          if (Status s = io_.Write(SegmentSummaryStartByte(p) / sector, zeros);
              !s.ok() && s.code() != ErrorCode::kIoError) {
            return s;
          }
        }
        continue;
      }
      SegmentUsage& u = usage_->segment(p);
      u.state = SegmentState::kParity;
      u.live_bytes = 0;
      u.newest_ts = 0;
      u.age_ts = 0;
      u.cold = false;
      StripeSet set;
      set.parity_segment = p;
      set.members = net.members;
      set.member_seqs = net.member_seqs;
      set.parity_crc = net.parity_crc;
      set.record_segment = net.record_segment;
      RegisterStripe(std::move(set));
      bool parity_touched = false;
      for (uint32_t c = SegmentChannel(p); c <= SegmentLastChannel(p) && !parity_touched; ++c) {
        parity_touched = stripe_channels_touched.count(c) != 0;
      }
      if (parity_touched) {
        // The parity image itself may sit on the replaced channel: have the
        // rebuild lay it down again.
        EnqueueRebuild(p);
      }
    }
  }
  return OkStatus();
}

void LogStructuredDisk::RebuildDerivedState(const std::vector<uint64_t>& segment_seqs,
                                            const std::vector<bool>& segment_has_summary) {
  usage_->Reset();
  for (uint32_t s = 0; s < usage_->num_segments(); ++s) {
    SegmentUsage& u = usage_->segment(s);
    if (segment_has_summary[s]) {
      u.state = SegmentState::kFull;
      u.seq = segment_seqs[s];
    } else {
      u.state = SegmentState::kFree;
    }
  }
  for (Bid bid = 1; bid <= block_map_.max_bid(); ++bid) {
    if (!block_map_.IsAllocated(bid)) {
      continue;
    }
    const BlockMapEntry& e = block_map_.entry(bid);
    if (e.phys.IsOnDisk()) {
      usage_->AddLive(e.phys.segment, e.stored_size, e.write_ts);
    }
  }
  // Segments without live data (e.g. superseded partial-write scratches)
  // stay kFull: their summaries may still hold the latest metadata records,
  // so only the cleaner — which re-logs live records — may reuse them.
}

}  // namespace ld

// Crash recovery and clean-shutdown checkpointing (paper §3.6).
//
// LLD takes no checkpoints during normal operation. On explicit shutdown it
// writes its data structures and a validity marker to a reserved region; on
// startup the marker is invalidated, so only a clean shutdown followed by a
// clean startup skips log recovery. After a failure, recovery reads every
// segment summary in one sweep over the disk, orders segments by their write
// sequence number, and replays the records. Atomic recovery units are
// honored: a record tagged with an ARU id is applied only if that ARU's
// commit record is on disk.

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "src/lld/lld.h"
#include "src/util/crc32.h"
#include "src/util/log.h"

namespace ld {

namespace {
// "LDC2": bumped from "LDC1" when per-segment parity geometry was added to
// the checkpointed usage table (and from "LDCP" before that, for per-block
// payload checksums). An old marker fails the magic test and startup falls
// back to log recovery, which handles every record layout.
constexpr uint32_t kCheckpointMagic = 0x4c444332;
}  // namespace

// ---- Checkpoint ------------------------------------------------------------

Status LogStructuredDisk::WriteCheckpoint() {
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU64(next_ts_);
  enc.PutU64(next_seq_);
  enc.PutU32(next_aru_id_);

  // Block map: only allocated entries.
  enc.PutU64(block_map_.allocated_count());
  for (Bid bid = 1; bid <= block_map_.max_bid(); ++bid) {
    if (!block_map_.IsAllocated(bid)) {
      continue;
    }
    const BlockMapEntry& e = block_map_.entry(bid);
    enc.PutU32(bid);
    enc.PutU32(e.phys.segment);
    enc.PutU32(e.phys.offset);
    enc.PutU32(e.successor);
    enc.PutU32(e.list);
    enc.PutU32(e.size_class);
    enc.PutU32(e.stored_size);
    enc.PutU8(e.compressed ? 1 : 0);
    enc.PutU64(e.write_ts);
    enc.PutU32(e.link_seg);
    enc.PutU32(e.alloc_seg);
    enc.PutU32(e.payload_crc);
    enc.PutU8(e.has_payload_crc ? 1 : 0);
  }

  // List table.
  enc.PutU64(list_table_.allocated_count());
  for (Lid lid = 1; lid <= list_table_.max_lid(); ++lid) {
    if (!list_table_.IsAllocated(lid)) {
      continue;
    }
    const ListEntry& e = list_table_.entry(lid);
    enc.PutU32(lid);
    enc.PutU32(e.first);
    enc.PutU8(static_cast<uint8_t>((e.hints.cluster ? 1 : 0) | (e.hints.compress ? 2 : 0) |
                                   (e.hints.interlist_cluster ? 4 : 0)));
    enc.PutU32(e.lol_next);
    enc.PutU32(e.head_seg);
    enc.PutU32(e.create_seg);
  }

  // Usage table.
  enc.PutU32(usage_->num_segments());
  for (uint32_t s = 0; s < usage_->num_segments(); ++s) {
    const SegmentUsage& u = usage_->segment(s);
    enc.PutU8(static_cast<uint8_t>(u.state));
    enc.PutU32(u.live_bytes);
    enc.PutU64(u.newest_ts);
    enc.PutU64(u.seq);
    enc.PutU8(u.has_parity ? 1 : 0);
    enc.PutU32(u.parity_offset);
    enc.PutU32(u.parity_bytes);
    enc.PutU32(u.parity_covered);
    enc.PutU32(u.parity_crc);
  }
  const uint64_t body_size = payload.size();  // CRC excluded from the marker's size.
  enc.PutU32(Crc32(payload));

  const uint32_t sector = device_->sector_size();
  const uint64_t marker_sectors = 1;
  const uint64_t payload_start = checkpoint_start_byte_ + marker_sectors * sector;
  if (payload.size() > checkpoint_bytes_ - marker_sectors * sector) {
    // Too big for the region: skip the checkpoint; the next open recovers
    // from the log instead.
    LD_LOG(kWarn) << "checkpoint payload (" << payload.size()
                  << " bytes) exceeds the reserved region; falling back to log recovery";
    return InvalidateCheckpoint();
  }
  std::vector<uint8_t> padded(((payload.size() + sector - 1) / sector) * sector, 0);
  std::memcpy(padded.data(), payload.data(), payload.size());
  RETURN_IF_ERROR(io_.Write(payload_start / sector, padded));

  // Marker written last: its single-sector write commits the checkpoint.
  std::vector<uint8_t> marker_payload;
  Encoder menc(&marker_payload);
  menc.PutU32(kCheckpointMagic);
  menc.PutU8(1);  // valid
  menc.PutU64(body_size);
  menc.PutU32(Crc32(marker_payload));
  std::vector<uint8_t> marker(sector, 0);
  std::memcpy(marker.data(), marker_payload.data(), marker_payload.size());
  return io_.Write(checkpoint_start_byte_ / sector, marker);
}

Status LogStructuredDisk::InvalidateCheckpoint() {
  const uint32_t sector = device_->sector_size();
  std::vector<uint8_t> marker_payload;
  Encoder menc(&marker_payload);
  menc.PutU32(kCheckpointMagic);
  menc.PutU8(0);  // invalid
  menc.PutU64(0);
  menc.PutU32(Crc32(marker_payload));
  std::vector<uint8_t> marker(sector, 0);
  std::memcpy(marker.data(), marker_payload.data(), marker_payload.size());
  return io_.Write(checkpoint_start_byte_ / sector, marker);
}

Status LogStructuredDisk::LoadCheckpoint(bool* valid) {
  *valid = false;
  const uint32_t sector = device_->sector_size();
  std::vector<uint8_t> marker(sector);
  RETURN_IF_ERROR(io_.Read(checkpoint_start_byte_ / sector, marker));
  Decoder mdec(marker);
  const uint32_t magic = mdec.GetU32();
  const uint8_t flag = mdec.GetU8();
  const uint64_t payload_size = mdec.GetU64();
  const size_t body_end = mdec.position();
  const uint32_t crc = mdec.GetU32();
  if (!mdec.ok() || magic != kCheckpointMagic ||
      crc != Crc32(std::span<const uint8_t>(marker).subspan(0, body_end))) {
    return OkStatus();  // No marker at all: treat as invalid.
  }
  if (flag != 1) {
    return OkStatus();
  }

  const uint64_t payload_start = checkpoint_start_byte_ + sector;
  std::vector<uint8_t> padded(((payload_size + 4 + sector - 1) / sector) * sector);
  RETURN_IF_ERROR(io_.Read(payload_start / sector, padded));
  std::span<const uint8_t> payload(padded.data(), payload_size + 4);
  if (Crc32(payload.subspan(0, payload_size)) !=
      (static_cast<uint32_t>(payload[payload_size]) |
       (static_cast<uint32_t>(payload[payload_size + 1]) << 8) |
       (static_cast<uint32_t>(payload[payload_size + 2]) << 16) |
       (static_cast<uint32_t>(payload[payload_size + 3]) << 24))) {
    LD_LOG(kWarn) << "checkpoint payload crc mismatch; falling back to log recovery";
    return OkStatus();
  }

  Decoder dec(payload.subspan(0, payload_size));
  next_ts_ = dec.GetU64();
  next_seq_ = dec.GetU64();
  next_aru_id_ = dec.GetU32();

  block_map_.Clear();
  const uint64_t block_count = dec.GetU64();
  for (uint64_t i = 0; i < block_count; ++i) {
    const Bid bid = dec.GetU32();
    if (!dec.ok()) {
      return CorruptionError("checkpoint block map truncated");
    }
    BlockMapEntry& e = block_map_.EnsureAllocated(bid);
    e.phys.segment = dec.GetU32();
    e.phys.offset = dec.GetU32();
    e.successor = dec.GetU32();
    e.list = dec.GetU32();
    e.size_class = dec.GetU32();
    e.stored_size = dec.GetU32();
    e.compressed = dec.GetU8() != 0;
    e.write_ts = dec.GetU64();
    e.link_seg = dec.GetU32();
    e.alloc_seg = dec.GetU32();
    e.payload_crc = dec.GetU32();
    e.has_payload_crc = dec.GetU8() != 0;
  }

  list_table_.Clear();
  const uint64_t list_count = dec.GetU64();
  for (uint64_t i = 0; i < list_count; ++i) {
    const Lid lid = dec.GetU32();
    if (!dec.ok()) {
      return CorruptionError("checkpoint list table truncated");
    }
    ListEntry& e = list_table_.EnsureAllocated(lid);
    e.first = dec.GetU32();
    const uint8_t hints = dec.GetU8();
    e.hints.cluster = (hints & 1) != 0;
    e.hints.compress = (hints & 2) != 0;
    e.hints.interlist_cluster = (hints & 4) != 0;
    e.lol_next = dec.GetU32();
    e.head_seg = dec.GetU32();
    e.create_seg = dec.GetU32();
  }

  const uint32_t seg_count = dec.GetU32();
  if (seg_count != usage_->num_segments()) {
    return CorruptionError("checkpoint segment count mismatch");
  }
  for (uint32_t s = 0; s < seg_count; ++s) {
    SegmentUsage& u = usage_->segment(s);
    u.state = static_cast<SegmentState>(dec.GetU8());
    u.live_bytes = dec.GetU32();
    u.newest_ts = dec.GetU64();
    u.seq = dec.GetU64();
    u.has_parity = dec.GetU8() != 0;
    u.parity_offset = dec.GetU32();
    u.parity_bytes = dec.GetU32();
    u.parity_covered = dec.GetU32();
    u.parity_crc = dec.GetU32();
    // A scratch segment cannot survive a shutdown (Shutdown writes full).
    if (u.state == SegmentState::kScratch) {
      u.state = SegmentState::kFree;
    }
  }
  RETURN_IF_ERROR(dec.ToStatus("checkpoint payload"));

  block_map_.RebuildFreeList();
  list_table_.RebuildFreeList();
  list_table_.RelinkListOfLists();
  *valid = true;
  return OkStatus();
}

// ---- Log recovery ------------------------------------------------------------

Status LogStructuredDisk::RecoverFromLog(RecoveryStats* stats) {
  const double start = device_->clock()->Now();
  const uint32_t sector = device_->sector_size();
  const uint32_t num_segments = usage_->num_segments();

  struct ScannedSegment {
    uint32_t index = 0;
    uint64_t seq = 0;
    std::vector<SummaryRecord> records;
  };
  std::vector<ScannedSegment> scanned;
  std::vector<bool> has_summary(num_segments, false);

  // Summaries that could not be read or validated. Classification is
  // deferred until the whole sweep is done: segments are submitted to the
  // device in seq order, so the durable, valid summaries always form a seq
  // prefix of the log. A suspect claiming a seq *beyond* that prefix was in
  // flight at the crash and is discarded like any torn write ("the segment
  // never happened"); a suspect inside the prefix — or one whose header is
  // too damaged to claim anything — is media corruption of committed state,
  // and silently dropping it would resurrect stale block versions. That case
  // surfaces as CORRUPTION (Scrub can retire such segments while the disk is
  // healthy; recovery must not guess) — unless a logged kScrubIntent vouches
  // that the segment was already fully relocated, in which case recovery
  // completes the interrupted retirement instead.
  struct SuspectSegment {
    uint32_t index = 0;
    bool seq_known = false;
    uint64_t claimed_seq = 0;
    bool unreadable = false;  // I/O error (vs. failed validation).
  };
  std::vector<SuspectSegment> suspects;

  // One sweep over the disk, reading the fixed-location summaries (§3.6).
  std::vector<uint8_t> summary(options_.summary_bytes);
  for (uint32_t seg = 0; seg < num_segments; ++seg) {
    stats->summaries_scanned++;
    if (Status s = io_.Read((SegmentBaseByte(seg) + data_capacity_) / sector, summary);
        !s.ok()) {
      if (s.code() != ErrorCode::kIoError) {
        return s;
      }
      suspects.push_back({seg, false, 0, /*unreadable=*/true});
      continue;
    }
    SummaryHeader header;
    const Status head = DecodeSummaryHeader(summary, &header);
    if (head.code() == ErrorCode::kNotFound) {
      // No magic. An untouched (or scrub-retired) summary region is all
      // zeros; any other content means the magic itself was damaged.
      const bool all_zero =
          std::all_of(summary.begin(), summary.end(), [](uint8_t b) { return b == 0; });
      if (!all_zero) {
        suspects.push_back({seg, false, 0, false});
      }
      continue;  // Never written.
    }
    if (!head.ok() || header.ext_bytes > data_capacity_ || header.segment_index != seg) {
      suspects.push_back({seg, false, 0, false});
      continue;
    }
    // Record-heavy segments spill records into the end of their data area.
    std::vector<uint8_t> ext;
    if (header.ext_bytes > 0) {
      const uint64_t ext_start = data_capacity_ - header.ext_bytes;
      const uint64_t first = (SegmentBaseByte(seg) + ext_start) / sector * sector;
      const uint64_t end = SegmentBaseByte(seg) + data_capacity_;
      std::vector<uint8_t> raw((end - first + sector - 1) / sector * sector);
      if (Status s = io_.Read(first / sector, raw); !s.ok()) {
        if (s.code() != ErrorCode::kIoError) {
          return s;
        }
        suspects.push_back({seg, true, header.seq, /*unreadable=*/true});
        continue;
      }
      const size_t skip = (SegmentBaseByte(seg) + ext_start) - first;
      ext.assign(raw.begin() + skip, raw.begin() + skip + header.ext_bytes);
    }
    std::vector<SummaryRecord> records;
    const Status decode = DecodeSummary(summary, ext, &header, &records);
    if (!decode.ok()) {
      suspects.push_back({seg, true, header.seq, false});
      continue;
    }
    stats->summaries_valid++;
    has_summary[seg] = true;
    scanned.push_back(ScannedSegment{seg, header.seq, std::move(records)});
  }

  // Scrub intents: a kScrubIntent record in a valid summary says "segment X
  // (whose retired summary carried seq S) has been fully relocated; its
  // summary is garbage awaiting the zeroing write". A crash between the
  // intent and the zeroing leaves the damaged summary behind — exactly the
  // shape recovery would otherwise refuse as mid-log corruption.
  std::unordered_map<uint32_t, uint64_t> intent_seqs;  // segment -> newest intent seq
  for (const auto& seg : scanned) {
    for (const auto& r : seg.records) {
      if (r.type == SummaryRecordType::kScrubIntent) {
        uint64_t& newest = intent_seqs[r.bid];
        newest = std::max(newest, r.intent_seq);
      }
    }
  }

  // Classify the suspects against the valid prefix (see above).
  uint64_t max_valid_seq = 0;
  for (const auto& seg : scanned) {
    max_valid_seq = std::max(max_valid_seq, seg.seq);
  }
  Status corrupt_log = OkStatus();
  for (const auto& s : suspects) {
    if (s.seq_known && s.claimed_seq > max_valid_seq) {
      // In flight at the crash: discarding it yields the consistent prefix.
      LD_LOG(kInfo) << "recovery: ignoring torn segment " << s.index;
      continue;
    }
    if (auto it = intent_seqs.find(s.index);
        it != intent_seqs.end() && (!s.seq_known || s.claimed_seq <= it->second)) {
      // Covered by a scrub intent: the scrub already relocated everything
      // live here before logging the intent, so complete the interrupted
      // retirement — zero the summary and let the segment come back free. A
      // summary too damaged to claim a seq is covered too (the intent is the
      // only witness left); a *newer* seq than the intent means the segment
      // was reused after retirement and the damage is fresh, so the intent
      // must not retire it — fall through to the refusal below.
      LD_LOG(kInfo) << "recovery: completing scrub retirement of segment " << s.index;
      std::vector<uint8_t> zeros(options_.summary_bytes, 0);
      RETURN_IF_ERROR(io_.Write(SegmentSummaryStartByte(s.index) / sector, zeros));
      stats->retirements_completed++;
      continue;
    }
    if (s.unreadable) {
      stats->summaries_unreadable++;
    } else {
      stats->summaries_corrupt++;
    }
    LD_LOG(kWarn) << "recovery: segment " << s.index << " summary "
                  << (s.unreadable ? "unreadable" : "corrupt") << " inside the committed log";
    if (corrupt_log.ok()) {
      corrupt_log = CorruptionError(
          "recovery: segment " + std::to_string(s.index) + " summary " +
          (s.unreadable ? "unreadable" : "corrupt") +
          " inside the committed log; refusing to resurrect stale state");
    }
  }
  RETURN_IF_ERROR(corrupt_log);

  // Replay in write order.
  std::sort(scanned.begin(), scanned.end(),
            [](const ScannedSegment& a, const ScannedSegment& b) { return a.seq < b.seq; });

  // Pass 1: which ARUs committed?
  std::unordered_set<uint32_t> committed;
  for (const auto& seg : scanned) {
    for (const auto& r : seg.records) {
      if (r.type == SummaryRecordType::kAruCommit) {
        committed.insert(r.aru_id);
      }
    }
  }

  // Pass 2: apply.
  block_map_.Clear();
  list_table_.Clear();
  uint64_t max_ts = 0;
  uint64_t max_seq = 0;
  uint32_t max_aru = 0;
  std::vector<uint64_t> segment_seqs(num_segments, 0);
  // Parity geometry per segment, from each segment's own kSegmentParity
  // record; applied after RebuildDerivedState (which resets the table).
  struct ParityInfo {
    bool has = false;
    uint32_t offset = 0, bytes = 0, covered = 0, crc = 0;
  };
  std::vector<ParityInfo> parity(num_segments);
  for (const auto& seg : scanned) {
    segment_seqs[seg.index] = seg.seq;
    max_seq = std::max(max_seq, seg.seq);
    for (const auto& r : seg.records) {
      max_ts = std::max(max_ts, r.ts);
      max_aru = std::max(max_aru, r.aru_id);
      if (r.aru_id != 0 && committed.count(r.aru_id) == 0) {
        stats->records_dropped_uncommitted++;
        continue;
      }
      stats->records_applied++;
      switch (r.type) {
        case SummaryRecordType::kBlockAlloc: {
          BlockMapEntry& e = block_map_.EnsureAllocated(r.bid);
          e.list = r.lid;
          e.size_class = r.orig_size;
          e.alloc_seg = seg.index;
          break;
        }
        case SummaryRecordType::kBlockEntry: {
          BlockMapEntry& e = block_map_.EnsureAllocated(r.bid);
          if (!r.has_payload_crc) {
            // CRC-bearing entries store the checksum where the legacy
            // layout kept the list id; the list comes from kBlockAlloc.
            e.list = r.lid;
          }
          e.size_class = r.orig_size;
          e.phys = PhysAddr{seg.index, r.offset};
          e.stored_size = r.stored_size;
          e.compressed = r.compressed;
          e.write_ts = r.ts;
          e.payload_crc = r.payload_crc;
          e.has_payload_crc = r.has_payload_crc;
          break;
        }
        case SummaryRecordType::kLinkTuple: {
          BlockMapEntry& e = block_map_.EnsureAllocated(r.bid);
          e.successor = r.link_to;
          e.link_seg = seg.index;
          break;
        }
        case SummaryRecordType::kBlockFree:
          block_map_.ForceFree(r.bid);
          break;
        case SummaryRecordType::kListHead: {
          ListEntry& e = list_table_.EnsureAllocated(r.lid);
          e.first = r.link_to;
          e.head_seg = seg.index;
          break;
        }
        case SummaryRecordType::kListCreate: {
          ListEntry& e = list_table_.EnsureAllocated(r.lid);
          e.hints = r.hints;
          e.lol_next = r.lol_next;
          e.create_seg = seg.index;
          break;
        }
        case SummaryRecordType::kListMove: {
          ListEntry& e = list_table_.EnsureAllocated(r.lid);
          e.lol_next = r.lol_next;
          e.create_seg = seg.index;
          break;
        }
        case SummaryRecordType::kListDelete:
          list_table_.ForceFree(r.lid);
          break;
        case SummaryRecordType::kAruCommit:
          break;
        case SummaryRecordType::kSegmentParity: {
          ParityInfo& p = parity[seg.index];
          p.has = true;
          p.offset = r.offset;
          p.bytes = r.stored_size;
          p.covered = r.orig_size;
          p.crc = r.payload_crc;
          break;
        }
        case SummaryRecordType::kScrubIntent:
          break;  // Consumed above, during suspect classification.
      }
    }
  }

  next_ts_ = max_ts + 1;
  next_seq_ = max_seq + 1;
  next_aru_id_ = max_aru + 1;

  block_map_.RebuildFreeList();
  list_table_.RebuildFreeList();
  list_table_.RelinkListOfLists();
  RebuildDerivedState(segment_seqs, has_summary);
  for (uint32_t s = 0; s < num_segments; ++s) {
    if (parity[s].has) {
      SegmentUsage& u = usage_->segment(s);
      u.has_parity = true;
      u.parity_offset = parity[s].offset;
      u.parity_bytes = parity[s].bytes;
      u.parity_covered = parity[s].covered;
      u.parity_crc = parity[s].crc;
    }
  }

  stats->live_blocks = block_map_.allocated_count();
  stats->seconds = device_->clock()->Now() - start;
  return OkStatus();
}

void LogStructuredDisk::RebuildDerivedState(const std::vector<uint64_t>& segment_seqs,
                                            const std::vector<bool>& segment_has_summary) {
  usage_->Reset();
  for (uint32_t s = 0; s < usage_->num_segments(); ++s) {
    SegmentUsage& u = usage_->segment(s);
    if (segment_has_summary[s]) {
      u.state = SegmentState::kFull;
      u.seq = segment_seqs[s];
    } else {
      u.state = SegmentState::kFree;
    }
  }
  for (Bid bid = 1; bid <= block_map_.max_bid(); ++bid) {
    if (!block_map_.IsAllocated(bid)) {
      continue;
    }
    const BlockMapEntry& e = block_map_.entry(bid);
    if (e.phys.IsOnDisk()) {
      usage_->AddLive(e.phys.segment, e.stored_size, e.write_ts);
    }
  }
  // Segments without live data (e.g. superseded partial-write scratches)
  // stay kFull: their summaries may still hold the latest metadata records,
  // so only the cleaner — which re-logs live records — may reuse them.
}

}  // namespace ld

// Tunables of the log-structured LD implementation (paper §3).

#ifndef SRC_LLD_LLD_OPTIONS_H_
#define SRC_LLD_LLD_OPTIONS_H_

#include <cstdint>

#include "src/compress/compressor.h"
#include "src/disk/qos.h"
#include "src/disk/reliable_io.h"

namespace ld {

enum class CleaningPolicy {
  kGreedy,       // Lowest live bytes first (the legacy policy).
  kCostBenefit,  // Sprite LFS cost-benefit: (1-u)*age / (1+u), on preserved
                 // block ages, with cleaner output segregated as cold.
};

struct LldOptions {
  // Default logical block size class (MINIX LLD uses 4 KB).
  uint32_t block_size = 4096;

  // Segment size. The paper measures 64..512 KB; 512 KB is the default used
  // in the main experiments.
  uint32_t segment_bytes = 512 * 1024;

  // Fixed-size summary region at the end of every segment. The paper packs
  // a summary into one 4-KB block (7 bytes per block, 12 per link tuple);
  // our records are more explicit (they carry the owning list, both size
  // fields, and an ARU id — ~77 bytes per freshly allocated block), so the
  // default is 16 KB (~3 % of a 512-KB segment). With a smaller summary the
  // record area fills before the data area and segments go out underfull.
  uint32_t summary_bytes = 16384;

  // Partial-segment threshold (paper §3.2): a Flush above this fill fraction
  // writes the segment as final; below it the segment goes to a scratch
  // physical segment and stays open in memory.
  double partial_segment_threshold = 0.75;

  // When the number of free segments drops to this reserve, the cleaner runs
  // before the next segment allocation. The effective reserve is scaled up
  // with the disk (min(num_segments/8, 32)) so that a cleaning round over
  // high-live victims still nets free segments at high utilization.
  uint32_t free_segment_reserve = 4;

  // Segments cleaned per cleaner invocation.
  uint32_t segments_per_clean = 4;

  // Victim-selection policy. kGreedy is the legacy default and is
  // byte-identical to the pre-policy cleaner. kCostBenefit scores victims by
  // (1-u)*age/(1+u) over *preserved* block write ages (the cleaner re-logs a
  // block without refreshing its age) and marks cleaner-written segments as a
  // cold generation, so data that survived a cleaning pass stops being
  // recopied on every round. LD_CLEANER_POLICY selects it in the harness.
  CleaningPolicy cleaning_policy = CleaningPolicy::kGreedy;

  // Fraction of data capacity that may hold live bytes before writes fail
  // with NO_SPACE; the remainder is cleaning headroom.
  double max_utilization = 0.95;

  // Compression. When `compressor` is null, lists with the compress hint are
  // stored raw. Bandwidths are charged to the simulated clock; compression
  // of one segment overlaps the disk write of the previous one (§3.3, §4.2),
  // decompression cannot overlap the read.
  Compressor* compressor = nullptr;
  double compress_kb_per_s = 1600.0;
  double decompress_kb_per_s = 1400.0;

  // Pipeline full-segment writes (§3.3): seal the open segment into a second
  // buffer, submit it to the device queue asynchronously, and keep accepting
  // writes — CPU (compression, list maintenance) overlaps the in-flight disk
  // write. When false, every full-segment write completes synchronously
  // (useful for timing A/B tests; recovery state is identical either way).
  bool pipeline_segment_writes = true;

  // Reorder live blocks into list order when cleaning (paper §3.5).
  bool cluster_on_clean = true;

  // Ablation for §4.2's "version of MINIX LLD that does not support lists":
  // when false, NewBlock/DeleteBlock skip all successor maintenance and its
  // logging (clustering degrades; recovery keeps block contents only).
  bool maintain_lists = true;

  // Track per-block read frequency (Akyürek & Salem 1993, cited in §5.3),
  // feeding RearrangeHotBlocks: frequently read blocks are rewritten
  // together so random reads of the hot set stop paying long seeks.
  bool track_read_heat = false;

  // NVRAM absorption of partial segments (Baker et al. 1992, cited in §5.3):
  // a below-threshold Flush whose open-segment content fits in NVRAM is
  // durable without any disk write; the segment keeps filling and goes out
  // once, full. This is a *performance* model — the simulation treats NVRAM
  // as surviving power failure, as Baker et al. do, so crash-recovery tests
  // must run with nvram_bytes = 0.
  uint64_t nvram_bytes = 0;

  // Media-fault tolerance (DESIGN.md "Failure model"). Every device access
  // goes through a ReliableIo shim that retries transient IO_ERRORs with
  // capped exponential backoff; a request that succeeds first try pays
  // nothing, so fault-free runs are unaffected.
  RetryPolicy retry;

  // Verify per-block payload CRCs on every Read of on-disk data, surfacing
  // silent media corruption as a typed CORRUPTION error. Blocks written
  // before the checksum format extension simply aren't verifiable.
  bool verify_read_checksums = true;

  // Write a per-segment XOR parity block when a segment is sealed, letting
  // the read path and Scrub *reconstruct* a single damaged extent (up to one
  // stored block, plus a sector of alignment slack) in an otherwise-healthy
  // segment instead of only reporting it. Costs one parity write per sealed
  // segment and shrinks the data area by the parity footprint; off by
  // default so fault-free benchmark tables are unchanged. Volumes mix
  // freely: segments without a kSegmentParity record simply aren't
  // reconstructible (PR 3 behaviour).
  bool segment_parity = false;

  // Cross-channel stripe parity (RAID-5-style). On a device with N >= 2
  // channels, sealed segments are grouped into stripe sets of one segment
  // per channel, and each set gets one parity segment (XOR of the members'
  // full images, rotated across channels) recorded via kStripeParity summary
  // records on the sealing segment. When a read or scrub failure exhausts
  // the per-segment parity lane — including a whole channel down — the block
  // is reconstructed from the N-1 surviving peers, gated on its payload CRC
  // so double faults stay typed CORRUPTION. Lld::Rebuild re-materializes a
  // healed (blank spare) channel's striped segments in place. Off by
  // default: fault-free benchmark tables are unchanged, and single-channel
  // devices never form stripes regardless.
  bool stripe_parity = false;

  // Tenant id Lld::Rebuild stamps on its own I/O, so the QoS dispatch layer
  // can pace rebuild traffic as a low-weight tenant while foreground
  // requests keep flowing. Defaults to the session tenant (no distinction).
  TenantId rebuild_tenant = kDefaultTenant;

  // Tenant id the segment cleaner stamps on its own I/O (victim reads and
  // copied-out segment writes), so cleaning bills to a background QoS budget
  // instead of the foreground session that happened to trigger it. The
  // harness points this at the maintenance tenant when a MaintenanceScheduler
  // is attached. kDefaultTenant means "the session tenant": no restamping at
  // all, preserving single-tenant behaviour exactly.
  TenantId cleaner_tenant = kDefaultTenant;

  // Incremental checkpointing (bounded recovery). 0 keeps the paper's
  // checkpoint-free normal operation: the only checkpoint is the clean-
  // shutdown image, invalidated on every startup, and recovery after a
  // crash scans every segment summary. When > 0, a delta checkpoint frame
  // is appended to the hardened A/B checkpoint region every this-many
  // sealed segments (carrying the summary records of the segments sealed
  // since the previous frame plus the covered sequence number), and new
  // segment writes are confined to the allocation window the latest frame
  // recorded — so crash recovery loads base + deltas and scans only the
  // window instead of the whole log. Recovery time becomes bounded by
  // log-written-since-checkpoint rather than volume size.
  uint32_t checkpoint_interval_segments = 0;

  // Defer cadence-driven checkpoint frames off the seal path: a seal only
  // *captures* its segment for the next frame, and the frame itself goes out
  // when the maintenance scheduler calls CheckpointStep() during device idle
  // time. Frames the allocation window depends on (the free pool running
  // low) are still written inline at the seal — correctness needs that
  // rebase regardless of pacing. Deferring only widens the recovery scan
  // (more seals since the last durable frame), never weakens it. No effect
  // with checkpoint_interval_segments == 0.
  bool defer_checkpoint_frames = false;

  // Fan the recovery summary scan out across the device's channels through
  // the async request queue (per-channel concurrent reads, then an ordered
  // merge by sequence number — ARU all-or-nothing semantics are preserved
  // because gating happens after the merge). When false, summaries are read
  // one at a time in segment order: the differential baseline; the
  // post-recovery state is byte-identical either way.
  bool parallel_recovery_scan = true;

  // Tenant session this LLD instance belongs to. Stamped as the device's
  // request context so a shared device can attribute segment writes, cleaner
  // traffic, and reads to the right session (multi-tenant QoS dispatch).
  TenantId tenant = kDefaultTenant;

  // CPU cost charged per list-maintenance operation (microseconds), modeling
  // the prototype's user-level list bookkeeping. 0 disables the model; the
  // list-overhead benchmark sets it to show the paper's ~15 % create/delete
  // overhead, which is CPU-side and otherwise invisible to a disk simulator.
  double cpu_per_list_op_us = 0.0;
};

}  // namespace ld

#endif  // SRC_LLD_LLD_OPTIONS_H_

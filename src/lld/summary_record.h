// Segment-summary records: LLD's metadata log (paper §3.1, Figure 2).
//
// A segment summary records, for every physical block in the segment, its
// logical block number, timestamp, length, and compression flag; it also
// logs list modifications as link tuples and list tuples, block
// deallocations, and ARU commit markers. Every record carries a timestamp
// and a bit saying whether it *ends* an atomic recovery unit; records inside
// an explicit BeginARU..EndARU window have the bit clear, so recovery can
// enforce all-or-nothing semantics (§3.1, §3.6).

#ifndef SRC_LLD_SUMMARY_RECORD_H_
#define SRC_LLD_SUMMARY_RECORD_H_

#include <cstdint>
#include <vector>

#include "src/ld/types.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace ld {

enum class SummaryRecordType : uint8_t {
  kBlockEntry = 1,   // A data block stored in this segment.
  kLinkTuple = 2,    // Successor-pointer update for a block.
  kListHead = 3,     // First-block update for a list.
  kListCreate = 4,   // List allocation (hints + position in list of lists).
  kListDelete = 5,   // List deallocation.
  kBlockFree = 6,    // Block-number deallocation.
  kAruCommit = 7,    // Explicit EndARU marker.
  kBlockAlloc = 8,   // Block-number allocation (bid, owning list, size class).
  kListMove = 9,     // List-of-lists successor update for a list.
  kSegmentParity = 10,  // XOR parity block covering this segment's data area.
  kScrubIntent = 11,    // Scrub retirement intent for a suspect segment.
  kStripeParity = 12,   // Cross-channel stripe membership (one per member).
};

// The 24-bit payload checksum stored in CRC-bearing block entries.
uint32_t PayloadCrc(std::span<const uint8_t> bytes);

struct SummaryRecord {
  SummaryRecordType type = SummaryRecordType::kBlockEntry;
  OpTimestamp ts = 0;
  bool ends_aru = true;

  // Atomic-recovery-unit id: 0 for standalone operations (their own implicit
  // ARU); otherwise the id of the enclosing BeginARU..EndARU window. Recovery
  // applies an ARU's records only if its kAruCommit record is on disk. The id
  // generalizes the paper's single-bit tagging so that internal operations
  // (cleaning) can interleave with an open ARU, and is the natural extension
  // point for the concurrent ARUs the paper lists as future work (§5.4).
  uint32_t aru_id = 0;

  // kBlockEntry
  Bid bid = kNilBid;
  uint32_t offset = 0;       // Byte offset of the data within the segment.
  uint32_t stored_size = 0;  // Bytes on disk.
  uint32_t orig_size = 0;    // Logical size class.
  bool compressed = false;
  Lid lid = kNilLid;         // Owning list (kBlockEntry / kListCreate / ...).

  // 24-bit payload checksum (truncated CRC32 of the stored bytes — the
  // compressed form if compressed). CRC-bearing entries reuse the three
  // bytes the owning-list id occupied in the legacy layout (recovery takes
  // the list from the block's kBlockAlloc record instead), so both layouts
  // encode to the same 24 bytes and segment packing is unchanged. Entries
  // written before the checksum format extension decode with
  // has_payload_crc == false and are simply not verifiable. Relocation
  // (cleaner, scrub) carries the original CRC verbatim so silent corruption
  // can never be laundered into a fresh valid checksum.
  uint32_t payload_crc = 0;
  bool has_payload_crc = false;

  // kLinkTuple: successor of `bid` becomes `link_to`.
  // kListHead:  first block of `lid` becomes `link_to`.
  Bid link_to = kNilBid;

  // kSegmentParity reuses offset (parity block's byte offset in the
  // segment), stored_size (parity length in bytes), orig_size (bytes of the
  // data area the parity covers, i.e. XOR lanes wrap at stored_size over
  // [0, orig_size)), and payload_crc (24-bit CRC of the parity bytes
  // themselves, so a rotted parity block is detected before it is trusted).
  //
  // kScrubIntent: `bid` reuses its 24 bits for the retired segment's index;
  // `intent_seq` is the newest summary sequence number scrub observed for
  // that segment. Recovery treats a damaged summary on that segment whose
  // claimed sequence is <= intent_seq as a retirement in progress and
  // completes it instead of refusing with CORRUPTION.
  //
  // kStripeParity declares one member of a cross-channel stripe set, reusing
  // `offset` for the parity segment's index, `bid` for the member segment's
  // index, `stored_size`/`orig_size` for the member's position and the total
  // member count, `intent_seq` for the member's summary sequence (so a
  // reused segment is never mistaken for the striped image), and
  // `payload_crc` for the 24-bit CRC of the parity segment's full image. A
  // record with member count 0 *dissolves* the stripe (cleaner countermand).
  // Newest record set per parity segment wins, in seq order.
  uint64_t intent_seq = 0;

  // kListCreate
  ListHints hints;
  Lid lol_next = kNilLid;    // Position in the list of lists (successor).

  static SummaryRecord BlockEntry(OpTimestamp ts, Bid bid, Lid lid, uint32_t offset,
                                  uint32_t stored_size, uint32_t orig_size, bool compressed,
                                  bool ends_aru, uint32_t payload_crc = 0,
                                  bool has_payload_crc = false);
  static SummaryRecord LinkTuple(OpTimestamp ts, Bid bid, Bid new_successor, bool ends_aru);
  static SummaryRecord ListHead(OpTimestamp ts, Lid lid, Bid new_first, bool ends_aru);
  static SummaryRecord ListCreate(OpTimestamp ts, Lid lid, ListHints hints, Lid lol_next,
                                  bool ends_aru);
  static SummaryRecord ListMove(OpTimestamp ts, Lid lid, Lid lol_next, ListHints hints,
                                bool ends_aru);
  static SummaryRecord ListDelete(OpTimestamp ts, Lid lid, bool ends_aru);
  static SummaryRecord BlockFree(OpTimestamp ts, Bid bid, bool ends_aru);
  static SummaryRecord BlockAlloc(OpTimestamp ts, Bid bid, Lid lid, uint32_t size_class,
                                  bool ends_aru);
  static SummaryRecord AruCommit(OpTimestamp ts, uint32_t aru_id);
  static SummaryRecord SegmentParity(OpTimestamp ts, uint32_t offset, uint32_t parity_bytes,
                                     uint32_t covered_bytes, uint32_t parity_crc);
  static SummaryRecord ScrubIntent(OpTimestamp ts, uint32_t segment_index, uint64_t seq);
  static SummaryRecord StripeParity(OpTimestamp ts, uint32_t parity_segment,
                                    uint32_t member_segment, uint32_t member_index,
                                    uint32_t member_count, uint64_t member_seq,
                                    uint32_t parity_crc);

  void EncodeTo(Encoder* enc) const;
  static StatusOr<SummaryRecord> DecodeFrom(Decoder* dec);

  // Serialized size in bytes (records are variable-length by type).
  size_t EncodedSize() const;
};

// Fixed header at the start of every segment summary (which itself sits at
// the fixed tail position of each segment).
struct SummaryHeader {
  static constexpr uint32_t kMagic = 0x4c445353;  // "LDSS"

  uint64_t seq = 0;           // Monotonic segment-write sequence number.
  uint32_t segment_index = 0;
  uint32_t record_count = 0;
  uint32_t data_bytes = 0;    // Fill level of the data area when written.
  // Bytes of record stream spilled into the *end of the data area* (just
  // below the summary tail). Record-heavy segments written by the cleaner
  // would otherwise waste their whole data area; the extension lets a
  // segment hold data_capacity worth of re-logged metadata.
  uint32_t ext_bytes = 0;

  static constexpr size_t kEncodedSize = 4 + 8 + 4 + 4 + 4 + 4 + 4;  // + crc
};

// Serializes header + records. The record stream fills `tail` (the fixed
// summary region) first; overflow goes into `ext` (the end of the data
// area), recording its size in the header. Pass an empty `ext` to forbid
// spilling. Returns CORRUPTION if the records do not fit. `ext_used`
// (optional) reports the spilled byte count.
Status EncodeSummary(const SummaryHeader& header, const std::vector<SummaryRecord>& records,
                     std::span<uint8_t> tail, std::span<uint8_t> ext = {},
                     uint32_t* ext_used = nullptr);

// Parses just the header of a summary tail (no CRC check): used to learn
// ext_bytes before fetching the extension region. NOT_FOUND on bad magic.
Status DecodeSummaryHeader(std::span<const uint8_t> tail, SummaryHeader* header);

// Parses a full summary from its tail plus (possibly empty) extension.
// Returns NOT_FOUND for a region that holds no valid summary (bad magic)
// and CORRUPTION for a torn or damaged one (bad CRC), which recovery treats
// as "segment never completed".
Status DecodeSummary(std::span<const uint8_t> tail, std::span<const uint8_t> ext,
                     SummaryHeader* header, std::vector<SummaryRecord>* records);
inline Status DecodeSummary(std::span<const uint8_t> tail, SummaryHeader* header,
                            std::vector<SummaryRecord>* records) {
  return DecodeSummary(tail, {}, header, records);
}

}  // namespace ld

#endif  // SRC_LLD_SUMMARY_RECORD_H_

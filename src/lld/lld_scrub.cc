// Media scrub: read-repair for latent errors and silent corruption.
//
// The log structure makes LLD its own repair engine: every live block is
// reachable through the block map, every live metadata record through the
// authority fields, so a scrub pass can re-verify all of it and relocate
// whatever sits on damaged media through the normal cleaner write path.
//
//   1. Quiesce: flush the open segment (full) and drain in-flight writes, so
//      the in-memory tables describe exactly the durable state.
//   2. Verify every written segment's summary. Summaries that cannot be read
//      or fail their CRC are *suspects*: recovery would refuse such a log
//      (mid-log corruption), so the whole segment must be retired now.
//   3. Read every live on-disk block back (with retries) and check its
//      payload CRC. A damaged block whose segment carries a parity block is
//      *reconstructed* (XOR of parity and the rest of the covered area,
//      verified against the block's original CRC) and relocated through the
//      normal log append path. Blocks on suspect segments are relocated:
//      healthy/reconstructed ones verbatim; corrupt ones verbatim with
//      their *original* CRC (the damage stays typed, never laundered);
//      unreadable ones as zeros with a deliberately poisoned CRC so reads
//      keep failing typed. Damaged blocks on healthy segments without
//      parity (or with a second fault eating the redundancy) are left in
//      place and reported.
//   4. Re-log, from the in-memory tables, every metadata record whose
//      authoritative copy lived in a suspect summary, and write countermand
//      tombstones for any dead block/list still mentioned by the surviving
//      summaries (the suspect may have held the only tombstone).
//   5. Write the batch through the cleaner writer (durable before reuse),
//      then log a kScrubIntent record per suspect (durable as its own
//      batch), and only then zero the suspect summaries and mark their
//      segments free.
//
// The intent records close what used to be a documented crash window: a
// crash after the relocation batch is durable but before a suspect summary
// is zeroed leaves mid-log damage that recovery would refuse with
// CORRUPTION. Recovery now matches the damaged summary against the logged
// intents (segment index + the retired summary's sequence number) and
// *completes* the retirement — zeroing the summary and freeing the segment —
// exactly as the interrupted scrub would have. A segment reused after
// retirement carries a newer sequence than the intent, so a stale intent can
// never retire live data.
//
// Incremental form (ScrubStep): the same pass, restricted to a cursor-driven
// window of `max_segments` segment indices per call, so the maintenance
// scheduler can run it in paced slices during device idle time. Each slice
// verifies its window's summaries and the payloads of live blocks stored
// there, and — only when it finds suspects — quiesces, widens the mention
// scan to the rest of the volume (countermand tombstones need every valid
// summary's mentions), and runs the full step-4/5 retirement protocol for
// its own suspects. The crash-ordering guarantees above therefore hold
// within every slice; a crash *between* slices is indistinguishable from a
// crash between two foreground Scrub() calls. A clean slice issues only
// reads and needs no quiesce at all (data effects are applied eagerly at
// submit time, so verification observes in-flight segment writes). One
// cycle's slices accumulate into a single report; Scrub() is one full-range
// slice after a quiesce, preserving the all-at-once, reset-per-call
// semantics as the differential baseline.

#include <algorithm>
#include <unordered_set>

#include "src/lld/lld.h"
#include "src/util/log.h"

namespace ld {

StatusOr<ScrubReport> LogStructuredDisk::Scrub() {
  RETURN_IF_ERROR(CheckWritable());
  if (!open_arus_.empty()) {
    return FailedPreconditionError("close open atomic recovery units before scrubbing");
  }
  // A monolithic pass abandons any incremental cycle: its report must
  // describe exactly this call, from a fresh cursor.
  scrub_ = ScrubState{};
  // Quiesce: after this, memory and durable state agree.
  RETURN_IF_ERROR(FlushOpenSegmentFull());
  RETURN_IF_ERROR(WaitForInflight());
  return ScrubStep(std::max(usage_->num_segments(), 1u));
}

StatusOr<ScrubReport> LogStructuredDisk::ScrubStep(uint32_t max_segments) {
  RETURN_IF_ERROR(CheckWritable());
  if (!open_arus_.empty()) {
    return FailedPreconditionError("close open atomic recovery units before scrubbing");
  }
  if (max_segments == 0) {
    max_segments = 1;
  }
  if (!scrub_.active) {
    scrub_ = ScrubState{};
    scrub_.active = true;
  }
  const uint32_t num_segments = usage_->num_segments();
  const uint32_t begin = std::min(scrub_.cursor, num_segments);
  const uint32_t end = static_cast<uint32_t>(
      std::min<uint64_t>(static_cast<uint64_t>(begin) + max_segments, num_segments));
  ScrubReport& report = scrub_.report;

  const uint32_t sector = device_->sector_size();
  std::unordered_set<uint32_t> suspects;
  std::unordered_set<Bid> mentioned_bids;
  std::unordered_set<Lid> mentioned_lids;

  // Reads and decodes segment `seg`'s summary into *records. Returns false
  // (with *why set) when the summary is damaged; non-IO errors propagate.
  std::vector<uint8_t> summary(options_.summary_bytes);
  auto decode_summary = [&](uint32_t seg, std::vector<SummaryRecord>* records,
                            const char** why) -> StatusOr<bool> {
    *why = nullptr;
    if (Status s = io_.Read(SegmentSummaryStartByte(seg) / sector, summary); !s.ok()) {
      if (s.code() != ErrorCode::kIoError) {
        return s;
      }
      *why = "unreadable";
      return false;
    }
    SummaryHeader header;
    const Status head = DecodeSummaryHeader(summary, &header);
    if (!head.ok() || header.ext_bytes > data_capacity_ || header.segment_index != seg) {
      *why = "corrupt";
      return false;
    }
    std::vector<uint8_t> ext;
    if (header.ext_bytes > 0) {
      const uint64_t ext_start = data_capacity_ - header.ext_bytes;
      const uint64_t first = (SegmentBaseByte(seg) + ext_start) / sector * sector;
      const uint64_t seg_end = SegmentBaseByte(seg) + data_capacity_;
      std::vector<uint8_t> raw((seg_end - first + sector - 1) / sector * sector);
      if (Status s = io_.Read(first / sector, raw); !s.ok()) {
        if (s.code() != ErrorCode::kIoError) {
          return s;
        }
        *why = "extension unreadable";
        return false;
      }
      const size_t skip = (SegmentBaseByte(seg) + ext_start) - first;
      ext.assign(raw.begin() + skip, raw.begin() + skip + header.ext_bytes);
    }
    if (!DecodeSummary(summary, ext, &header, records).ok()) {
      *why = "corrupt";
      return false;
    }
    return true;
  };
  const auto collect_mentions = [&](const std::vector<SummaryRecord>& records) {
    for (const auto& r : records) {
      switch (r.type) {
        case SummaryRecordType::kBlockEntry:
        case SummaryRecordType::kBlockAlloc:
        case SummaryRecordType::kLinkTuple:
        case SummaryRecordType::kBlockFree:
          mentioned_bids.insert(r.bid);
          break;
        case SummaryRecordType::kListHead:
        case SummaryRecordType::kListCreate:
        case SummaryRecordType::kListMove:
        case SummaryRecordType::kListDelete:
          mentioned_lids.insert(r.lid);
          break;
        case SummaryRecordType::kAruCommit:
        case SummaryRecordType::kSegmentParity:
        case SummaryRecordType::kScrubIntent:
        case SummaryRecordType::kStripeParity:
          break;
      }
    }
  };

  // Step 2: verify the window's written summaries; collect entity mentions
  // from the valid ones (needed for the countermand tombstones in step 4).
  for (uint32_t seg = begin; seg < end; ++seg) {
    const SegmentState state = usage_->segment(seg).state;
    if (state != SegmentState::kFull && state != SegmentState::kScratch) {
      continue;
    }
    report.segments_scanned++;
    std::vector<SummaryRecord> records;
    const char* why = nullptr;
    ASSIGN_OR_RETURN(const bool valid, decode_summary(seg, &records, &why));
    if (!valid) {
      LD_LOG(kWarn) << "scrub: segment " << seg << " summary " << why;
      suspects.insert(seg);
      report.suspect_segments++;
      continue;
    }
    collect_mentions(records);
  }

  if (!suspects.empty()) {
    // Damage found: quiesce before harvesting, so the in-memory tables
    // describe exactly the durable state (an open-segment copy newer than a
    // suspect's on-disk one would otherwise be skipped while the suspect is
    // retired under it). A no-op for the monolithic pass, which quiesced
    // before the scan.
    RETURN_IF_ERROR(FlushOpenSegmentFull());
    RETURN_IF_ERROR(WaitForInflight());
    // Countermand tombstones need mentions from *all* valid summaries, not
    // just the window's: widen the mention scan to the rest of the volume.
    // Damaged summaries out there contribute nothing — exactly as monolithic
    // suspects don't — and are retired when their own slice reaches them.
    for (uint32_t seg = 0; seg < num_segments; ++seg) {
      if (seg >= begin && seg < end) {
        continue;
      }
      const SegmentState state = usage_->segment(seg).state;
      if (state != SegmentState::kFull && state != SegmentState::kScratch) {
        continue;
      }
      std::vector<SummaryRecord> records;
      const char* why = nullptr;
      ASSIGN_OR_RETURN(const bool valid, decode_summary(seg, &records, &why));
      if (valid) {
        collect_mentions(records);
      }
    }
  }

  // Step 3: verify every live on-disk block stored in the window; relocate
  // whatever lives on a suspect segment so the segment can be retired.
  CleanerBatch batch;
  for (Bid bid = 1; bid <= block_map_.max_bid(); ++bid) {
    if (!block_map_.IsAllocated(bid)) {
      continue;
    }
    const BlockMapEntry& e = block_map_.entry(bid);
    if (!e.phys.IsOnDisk()) {
      continue;
    }
    if (e.phys.segment < begin || e.phys.segment >= end) {
      continue;
    }
    report.blocks_scanned++;
    const bool on_suspect = suspects.count(e.phys.segment) != 0;

    CleanedBlock b;
    b.bid = bid;
    b.orig_size = e.size_class;
    b.compressed = e.compressed;
    b.payload_crc = e.payload_crc;
    b.has_payload_crc = e.has_payload_crc;
    b.stored.resize(e.stored_size);

    bool damaged = false;
    bool unreadable = false;
    Status damage = OkStatus();
    if (Status s = ReadStored(e, b.stored); !s.ok()) {
      if (s.code() != ErrorCode::kIoError) {
        return s;
      }
      damaged = true;
      unreadable = true;
      damage = s;
    } else if (e.has_payload_crc && PayloadCrc(b.stored) != e.payload_crc) {
      damaged = true;
      damage = CorruptionError("scrub: block payload crc mismatch");
    }

    bool reconstructed = false;
    if (damaged) {
      // Parity first: a verified reconstruction recovers the lost bytes and
      // the block is relocated below with its original (verbatim) CRC, which
      // the reconstruction was checked against.
      if (TryReconstructStored(bid, e, b.stored, damage).ok()) {
        reconstructed = true;
        report.blocks_reconstructed++;
      } else if (TryStripeReconstructStored(bid, e, b.stored, damage).ok()) {
        // Second tier: the per-segment lane could not repair it, the
        // cross-channel stripe peers could. Accounted separately so the
        // report shows which redundancy actually carried the block.
        reconstructed = true;
        report.blocks_stripe_reconstructed++;
      } else if (unreadable) {
        report.blocks_unreadable++;
        if (on_suspect) {
          // The segment is being retired, so *something* must be written for
          // this block. Zeros with a CRC guaranteed not to match them keep
          // every future read failing as typed CORRUPTION instead of
          // resurrecting garbage.
          std::fill(b.stored.begin(), b.stored.end(), 0);
          b.payload_crc = ~PayloadCrc(b.stored) & 0xffffffu;
          b.has_payload_crc = true;
        }
      } else {
        // Carried verbatim (bytes and original CRC): relocation must never
        // launder corruption into a fresh valid checksum.
        report.blocks_corrupt++;
      }
    }
    if (damaged && !reconstructed && !on_suspect) {
      LD_LOG(kWarn) << "scrub: block " << bid << " in healthy segment " << e.phys.segment
                    << " is damaged and has no redundant copy";
      continue;  // Report only: nothing here can repair it.
    }
    if (on_suspect || reconstructed) {
      batch.blocks.push_back(std::move(b));
    }
  }

  // Step 4: re-log metadata whose authoritative record sits in a suspect
  // summary. The quiesce above makes the in-memory tables a faithful source
  // (the cleaner must use the victim's own records because unflushed state
  // may be newer; after a full flush there is no such state).
  if (!suspects.empty()) {
    for (Bid bid = 1; bid <= block_map_.max_bid(); ++bid) {
      if (!block_map_.IsAllocated(bid)) {
        continue;
      }
      const BlockMapEntry& e = block_map_.entry(bid);
      if (options_.maintain_lists && suspects.count(e.link_seg) != 0) {
        batch.records.push_back(SummaryRecord::LinkTuple(NextTs(), bid, e.successor, true));
        report.records_relogged++;
      }
      if (suspects.count(e.alloc_seg) != 0) {
        batch.records.push_back(
            SummaryRecord::BlockAlloc(NextTs(), bid, e.list, e.size_class, true));
        report.records_relogged++;
      }
    }
    for (Lid lid = 1; lid <= list_table_.max_lid(); ++lid) {
      if (!list_table_.IsAllocated(lid)) {
        continue;
      }
      const ListEntry& e = list_table_.entry(lid);
      if (suspects.count(e.head_seg) != 0) {
        batch.records.push_back(SummaryRecord::ListHead(NextTs(), lid, e.first, true));
        report.records_relogged++;
      }
      if (suspects.count(e.create_seg) != 0) {
        batch.records.push_back(
            SummaryRecord::ListCreate(NextTs(), lid, e.hints, e.lol_next, true));
        report.records_relogged++;
      }
    }
    // Countermand tombstones: a suspect summary may have held the only
    // tombstone for an entity that surviving summaries still mention; a
    // fresh tombstone (newest seq) keeps recovery from resurrecting it.
    for (Bid bid : mentioned_bids) {
      if (!block_map_.IsAllocated(bid)) {
        batch.records.push_back(SummaryRecord::BlockFree(NextTs(), bid, true));
        report.records_relogged++;
      }
    }
    for (Lid lid : mentioned_lids) {
      if (!list_table_.IsAllocated(lid)) {
        batch.records.push_back(SummaryRecord::ListDelete(NextTs(), lid, true));
        report.records_relogged++;
      }
    }
  }

  // A suspect that is a stripe member takes its set down with it: the image
  // being retired is exactly what the parity explains. The countermand rides
  // the repair batch; the parity segments are freed once it is durable.
  const std::vector<uint32_t> suspect_list(suspects.begin(), suspects.end());
  ASSIGN_OR_RETURN(const std::vector<uint32_t> dissolved_parity,
                   DissolveStripesTouching(suspect_list, &batch.records));

  // Step 5: make the repairs durable, then retire the suspects.
  report.blocks_relocated += batch.blocks.size();
  if (!batch.blocks.empty() || !batch.records.empty()) {
    OrderByLists(&batch.blocks);
    cleaning_ = true;
    const Status status = WriteCleanerBatch(std::move(batch));
    cleaning_ = false;
    RETURN_IF_ERROR(status);
  }
  for (uint32_t p : dissolved_parity) {
    SegmentUsage& u = usage_->segment(p);
    u.state = SegmentState::kFree;
    u.newest_ts = 0;
    u.age_ts = 0;
    u.cold = false;
    u.ClearParity();
  }
  if (!suspects.empty()) {
    // Log one retirement intent per suspect (its own durable batch, written
    // only after the relocation batch above drained): from here on a crash
    // at any point lets recovery finish the retirement instead of refusing
    // the damaged summary as mid-log corruption.
    CleanerBatch intents;
    for (uint32_t seg : suspects) {
      intents.records.push_back(
          SummaryRecord::ScrubIntent(NextTs(), seg, usage_->segment(seg).seq));
    }
    cleaning_ = true;
    const Status intent_status = WriteCleanerBatch(std::move(intents));
    cleaning_ = false;
    RETURN_IF_ERROR(intent_status);

    std::vector<uint8_t> zeros(options_.summary_bytes, 0);
    for (uint32_t seg : suspects) {
      if (Status s = io_.Write(SegmentSummaryStartByte(seg) / sector, zeros); !s.ok()) {
        return HandleWriteFailure(s);
      }
      SegmentUsage& u = usage_->segment(seg);
      u.state = SegmentState::kFree;
      u.live_bytes = 0;
      u.newest_ts = 0;
      u.age_ts = 0;
      u.cold = false;
      u.seq = 0;
      u.ClearParity();
      // The next checkpoint frame must record the retirement, or chain
      // replay would resurrect the segment as written.
      CaptureRetiredSegment(seg);
      counters_.segments_cleaned++;
    }
  }

  const ScrubReport out = report;
  scrub_.cursor = end;
  if (scrub_.cursor >= num_segments) {
    // Cycle complete: the next ScrubStep starts a fresh cursor and report.
    scrub_.active = false;
    scrub_.cursor = 0;
  }
  return out;
}

}  // namespace ld

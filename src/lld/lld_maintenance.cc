#include "src/lld/lld_maintenance.h"

#include <algorithm>

namespace ld {

void MaintenanceScheduler::Observe() {
  if (DiskStats* ds = lld_->device()->mutable_stats()) {
    // Sticky registration of the maintenance tenant, so NoteRequest can
    // classify traffic; redone every step because ResetStats() wipes it.
    ds->maintenance_tenant = options_.tenant;
  }
  // A rebuild queue observed nonempty and now drained means a heal just
  // finished; the healed channel's segments are unstriped until a restripe
  // pass covers them again.
  const uint32_t pending = lld_->rebuild_pending();
  if (pending > 0) {
    saw_rebuild_pending_ = true;
  } else if (saw_rebuild_pending_) {
    saw_rebuild_pending_ = false;
    restripe_armed_ = true;
  }
}

bool MaintenanceScheduler::HasWork() const {
  return (options_.checkpoint && lld_->CheckpointFrameDue()) ||
         (options_.rebuild && lld_->rebuild_pending() > 0) ||
         (options_.restripe && restripe_armed_) || (options_.scrub && scrub_armed_);
}

StatusOr<bool> MaintenanceScheduler::Step() {
  stats_.steps++;
  Observe();
  if (!HasWork()) {
    return false;
  }
  bool backoff = false;
  if (DiskStats* ds = lld_->device()->mutable_stats()) {
    // Fresh foreground traffic since the last step means the device is in a
    // busy phase: demand a doubled quiet window before spending a slice.
    backoff = ds->foreground_requests > foreground_seen_;
    foreground_seen_ = ds->foreground_requests;
    const double idle_ms = ds->IdleSeconds(lld_->device()->clock()->Now()) * 1000.0;
    if (idle_ms < options_.idle_threshold_ms * (backoff ? 2.0 : 1.0)) {
      stats_.idle_skips++;
      return false;
    }
  }
  return RunOneDuty();
}

StatusOr<uint32_t> MaintenanceScheduler::Drain(uint32_t max_steps) {
  uint32_t ran = 0;
  while (max_steps == 0 || ran < max_steps) {
    Observe();
    if (!HasWork()) {
      break;
    }
    ASSIGN_OR_RETURN(const bool did, RunOneDuty());
    if (!did) {
      break;  // Every armed duty declined (e.g. restripe found nothing).
    }
    ran++;
  }
  return ran;
}

StatusOr<bool> MaintenanceScheduler::RunOneDuty() {
  BlockDevice* device = lld_->device();
  // Round-robin over the duties so a long backlog in one (a full-volume
  // scrub) cannot starve the others (a due checkpoint frame).
  for (uint32_t probe = 0; probe < 4; ++probe) {
    const uint32_t duty = duty_cursor_;
    duty_cursor_ = (duty_cursor_ + 1) % 4;
    switch (duty) {
      case 0: {  // Checkpoint frame.
        if (!options_.checkpoint || !lld_->CheckpointFrameDue()) {
          break;
        }
        device->set_request_tenant(options_.tenant);
        const StatusOr<bool> wrote = lld_->CheckpointStep();
        device->set_request_tenant(lld_->options().tenant);
        RETURN_IF_ERROR(wrote.status());
        if (*wrote) {
          stats_.checkpoint_frames++;
        }
        return true;
      }
      case 1: {  // Paced rebuild. Rebuild stamps its own rebuild_tenant.
        if (!options_.rebuild || lld_->rebuild_pending() == 0) {
          break;
        }
        const uint32_t before = lld_->rebuild_pending();
        ASSIGN_OR_RETURN(const RebuildReport report,
                         lld_->Rebuild(std::max(options_.rebuild_segments_per_slice, 1u)));
        stats_.rebuild_slices++;
        stats_.rebuild_segments += before - std::min(before, report.segments_pending);
        stats_.last_rebuild = report;
        return true;
      }
      case 2: {  // Restripe after heal.
        if (!options_.restripe || !restripe_armed_) {
          break;
        }
        const uint32_t unstriped_before = lld_->UnstripedFullSegments();
        device->set_request_tenant(options_.tenant);
        const StatusOr<uint32_t> formed =
            lld_->FormStripes(std::max(options_.restripe_sets_per_slice, 2u));
        device->set_request_tenant(lld_->options().tenant);
        RETURN_IF_ERROR(formed.status());
        stats_.restripe_passes++;
        stats_.stripes_formed += *formed;
        // Convergence is "the unstriped population stopped shrinking", not
        // "nothing was formed": every pass seals a record carrier that is
        // itself a fresh unstriped segment, so a pass that only re-stripes
        // its predecessor's carrier is treading water.
        if (*formed == 0 || lld_->UnstripedFullSegments() >= unstriped_before) {
          restripe_armed_ = false;
        }
        if (*formed == 0) {
          break;  // Let another duty use this slice.
        }
        return true;
      }
      case 3: {  // Incremental scrub.
        if (!options_.scrub || !scrub_armed_) {
          break;
        }
        const uint32_t cursor_before = lld_->scrub_cursor();
        device->set_request_tenant(options_.tenant);
        const StatusOr<ScrubReport> report =
            lld_->ScrubStep(std::max(options_.scrub_segments_per_slice, 1u));
        device->set_request_tenant(lld_->options().tenant);
        RETURN_IF_ERROR(report.status());
        stats_.scrub_slices++;
        stats_.last_scrub = *report;
        if (lld_->scrub_cycle_active()) {
          stats_.scrub_segments += lld_->scrub_cursor() - cursor_before;
        } else {
          stats_.scrub_segments += lld_->num_segments() - cursor_before;
          stats_.scrub_cycles++;
          scrub_armed_ = options_.continuous_scrub;
        }
        return true;
      }
    }
  }
  return false;
}

}  // namespace ld

// Analytic memory and cost model for LLD's main-memory data structures
// (paper §3.4, Tables 2 and 3).
//
// The model reproduces the paper's arithmetic exactly: without compression a
// block-map entry costs 3 bytes of physical address + 3 bytes of successor;
// compression adds 2 bytes of length and 1 byte of address and fits ~67 %
// more blocks per physical gigabyte at a 60 % compression ratio; the list
// table costs 4 bytes per list; the usage table 3 bytes per segment.

#ifndef SRC_LLD_MEMORY_MODEL_H_
#define SRC_LLD_MEMORY_MODEL_H_

#include <cstdint>

namespace ld {

struct MemoryModelParams {
  uint64_t disk_bytes = 1ull << 30;        // Physical disk space.
  uint32_t avg_block_bytes = 4096;         // Average logical block size.
  bool compression = false;
  double compression_ratio = 0.60;         // Compressed size / original size.
  uint64_t lists = 1;                      // 1 = a single list for all files.
  uint32_t segment_bytes = 512 * 1024;
};

struct MemoryModelResult {
  uint64_t block_map_bytes = 0;
  uint64_t list_table_bytes = 0;
  uint64_t usage_table_bytes = 0;
  uint64_t total_bytes = 0;
  uint64_t effective_storage_bytes = 0;  // Logical bytes the disk can hold.
};

// Paper's accounting (Table 2).
MemoryModelResult ComputeMemoryModel(const MemoryModelParams& params);

// Paper's price accounting (Table 3): the fraction LLD's RAM adds to the
// disk's purchase price.
double ComputeCostFraction(const MemoryModelResult& memory, double ram_dollars_per_mb,
                           double disk_dollars_per_gb, uint64_t disk_bytes);

// Convenience: the number of lists for a one-list-per-file configuration.
uint64_t ListsForFileSize(uint64_t effective_storage_bytes, uint64_t avg_file_bytes);

}  // namespace ld

#endif  // SRC_LLD_MEMORY_MODEL_H_

// Idle-driven background maintenance for a log-structured LD.
//
// All the repair and hygiene work LLD knows how to do — media scrub,
// checkpoint frames, post-heal rebuild, restripe after heal — exists as
// incremental, re-entrant operations on LogStructuredDisk. This scheduler
// is the policy layer that runs them: it watches the device's foreground
// idle signal (DiskStats::IdleSeconds) and, when the device has been quiet
// long enough, runs one bounded slice of one duty per Step() call, stamped
// with a dedicated low-weight tenant id so the QoS dispatch layer paces the
// maintenance I/O against whatever foreground arrives mid-slice.
//
// The scheduler owns no thread: the harness (or an embedding application)
// calls Step() at convenient points — between requests, on a timer tick —
// and the scheduler decides whether the device is idle enough to spend a
// slice. This mirrors the paper's user-level prototype, where background
// reorganization runs inside the LD server's event loop rather than in a
// kernel thread.
//
// Duties, round-robin so no duty starves another:
//   checkpoint — write the due delta frame that defer_checkpoint_frames
//                kept off the seal path (Lld::CheckpointStep).
//   rebuild    — re-materialize a healed channel's striped segments, a few
//                per slice (Lld::Rebuild(n); stamps its own rebuild_tenant).
//   restripe   — re-form stripe sets over segments the heal left unstriped;
//                armed automatically when a rebuild queue drains, or by
//                RequestRestripe() (Lld::FormStripes(n)).
//   scrub      — cursor-driven media verification, a few segments per
//                slice (Lld::ScrubStep); one pass over the volume per
//                arming, continuous when continuous_scrub is set.
//
// Crash safety is inherited, not added: every duty is a normal LLD
// operation with the same durability ordering as its foreground equivalent,
// so a crash mid-maintenance recovers exactly like a crash mid-Scrub or
// mid-Rebuild (the recovery tests sweep both and compare outcome sets).

#ifndef SRC_LLD_LLD_MAINTENANCE_H_
#define SRC_LLD_LLD_MAINTENANCE_H_

#include <cstdint>

#include "src/lld/lld.h"
#include "src/lld/reports.h"

namespace ld {

struct MaintenanceOptions {
  // Tenant id stamped on all maintenance I/O. Must be a tenant distinct
  // from every foreground session's: the idle detector classifies requests
  // by this id, and with a shared id the scheduler's own I/O would read as
  // foreground pressure and starve it. The harness assigns one past the
  // session tenants and registers it (with a weight) in the QoS config.
  TenantId tenant = kDefaultTenant;

  // The device must have seen no foreground request for this long before a
  // slice runs. Fresh foreground pressure since the previous Step() doubles
  // the required window once (back-off under load).
  double idle_threshold_ms = 2.0;

  // Slice sizes: work per duty per Step(). Small slices keep the time the
  // device is busy with maintenance short, so a foreground burst arriving
  // mid-slice waits at most one slice (plus the QoS dispatch already
  // interleaves at chunk granularity).
  uint32_t scrub_segments_per_slice = 4;
  uint32_t rebuild_segments_per_slice = 2;
  // Clamped to >= 2 by the scheduler: every bounded FormStripes pass seals
  // one record-carrier segment, which is itself a future stripe candidate,
  // so a one-set slice would churn carriers forever without ever shrinking
  // the unstriped population.
  uint32_t restripe_sets_per_slice = 8;

  // Duty gates, all on by default (a duty whose trigger never fires costs
  // nothing).
  bool scrub = true;
  bool checkpoint = true;
  bool rebuild = true;
  bool restripe = true;

  // Re-arm the scrub cursor after each completed pass, so the volume is
  // verified continuously instead of once per arming.
  bool continuous_scrub = false;
};

struct MaintenanceStats {
  uint64_t steps = 0;              // Step() calls.
  uint64_t idle_skips = 0;         // Steps with work that the idle gate vetoed.
  uint64_t scrub_slices = 0;
  uint64_t scrub_segments = 0;     // Segment indices the scrub cursor advanced over.
  uint64_t scrub_cycles = 0;       // Completed full passes over the volume.
  uint64_t checkpoint_frames = 0;  // Deferred frames written by CheckpointStep.
  uint64_t rebuild_slices = 0;
  uint64_t rebuild_segments = 0;   // Segments taken off the rebuild queue.
  uint64_t restripe_passes = 0;
  uint64_t stripes_formed = 0;
  ScrubReport last_scrub;          // Accumulated report of the current/last cycle.
  RebuildReport last_rebuild;
};

class MaintenanceScheduler {
 public:
  MaintenanceScheduler(LogStructuredDisk* lld, const MaintenanceOptions& options)
      : lld_(lld), options_(options) {}

  // Runs at most one duty slice if the device is idle and a duty has work.
  // Returns whether a slice ran. Safe to call at any cadence.
  StatusOr<bool> Step();

  // Runs duty slices back to back, ignoring the idle gate, until no duty
  // has work or `max_steps` slices ran (0 = unbounded). Returns the number
  // of slices run. For shutdown paths and tests that want the backlog gone.
  StatusOr<uint32_t> Drain(uint32_t max_steps = 0);

  // True when some enabled duty would run if the device were idle.
  bool HasWork() const;

  // Manual arming (a fresh scrub pass; a restripe pass without a preceding
  // rebuild — e.g. after growing the stripe-eligible segment population).
  void RequestScrub() { scrub_armed_ = true; }
  void RequestRestripe() { restripe_armed_ = true; }

  const MaintenanceStats& stats() const { return stats_; }
  const MaintenanceOptions& options() const { return options_; }

 private:
  // Updates restripe arming from the rebuild queue and registers the
  // maintenance tenant with the device's idle detector (re-done every step
  // because ResetStats() wipes it).
  void Observe();
  StatusOr<bool> RunOneDuty();

  LogStructuredDisk* lld_;
  MaintenanceOptions options_;
  MaintenanceStats stats_;
  uint32_t duty_cursor_ = 0;
  bool scrub_armed_ = true;      // One full verification pass after startup.
  bool restripe_armed_ = false;
  bool saw_rebuild_pending_ = false;
  uint64_t foreground_seen_ = 0;
};

}  // namespace ld

#endif  // SRC_LLD_LLD_MAINTENANCE_H_

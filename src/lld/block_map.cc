#include "src/lld/block_map.h"

namespace ld {

Bid BlockMap::Allocate(Lid list, uint32_t size_class) {
  Bid bid;
  if (!free_bids_.empty()) {
    bid = free_bids_.back();
    free_bids_.pop_back();
  } else {
    bid = static_cast<Bid>(entries_.size());
    entries_.emplace_back();
  }
  BlockMapEntry& e = entries_[bid];
  e = BlockMapEntry{};
  e.allocated = true;
  e.list = list;
  e.size_class = size_class;
  allocated_count_++;
  return bid;
}

Status BlockMap::Free(Bid bid) {
  if (!IsAllocated(bid)) {
    return NotFoundError("free of unallocated block " + std::to_string(bid));
  }
  entries_[bid] = BlockMapEntry{};
  free_bids_.push_back(bid);
  allocated_count_--;
  return OkStatus();
}

bool BlockMap::IsAllocated(Bid bid) const {
  return bid != kNilBid && bid < entries_.size() && entries_[bid].allocated;
}

StatusOr<BlockMapEntry*> BlockMap::Lookup(Bid bid) {
  if (!IsAllocated(bid)) {
    return NotFoundError("unknown block " + std::to_string(bid));
  }
  return &entries_[bid];
}

StatusOr<const BlockMapEntry*> BlockMap::Lookup(Bid bid) const {
  if (!IsAllocated(bid)) {
    return NotFoundError("unknown block " + std::to_string(bid));
  }
  return &entries_[bid];
}

BlockMapEntry& BlockMap::EnsureAllocated(Bid bid) {
  if (bid >= entries_.size()) {
    entries_.resize(bid + 1);
  }
  BlockMapEntry& e = entries_[bid];
  if (!e.allocated) {
    e.allocated = true;
    allocated_count_++;
  }
  return e;
}

void BlockMap::ForceFree(Bid bid) {
  if (bid == kNilBid || bid >= entries_.size() || !entries_[bid].allocated) {
    return;
  }
  entries_[bid] = BlockMapEntry{};
  allocated_count_--;
}

void BlockMap::RebuildFreeList() {
  free_bids_.clear();
  for (Bid bid = static_cast<Bid>(entries_.size()) - 1; bid >= 1; --bid) {
    if (!entries_[bid].allocated) {
      free_bids_.push_back(bid);
    }
  }
}

uint64_t BlockMap::MemoryBytes() const {
  return entries_.capacity() * sizeof(BlockMapEntry) + free_bids_.capacity() * sizeof(Bid);
}

void BlockMap::Clear() {
  entries_.assign(1, BlockMapEntry{});
  free_bids_.clear();
  allocated_count_ = 0;
}

}  // namespace ld

#include "src/ffs/ffs.h"

namespace ld {

FfsBackend::FfsBackend(BlockDevice* device, const MinixSuperblock& sb,
                       uint32_t blocks_per_group)
    : ClassicBackend(device, sb), blocks_per_group_(blocks_per_group) {
  const uint32_t data_blocks = sb.num_blocks - sb.first_data_block;
  num_groups_ = std::max(1u, data_blocks / blocks_per_group_);
}

StatusOr<std::unique_ptr<FfsBackend>> FfsBackend::Create(BlockDevice* device,
                                                         const MinixSuperblock& sb, bool fresh,
                                                         uint32_t blocks_per_group) {
  std::unique_ptr<FfsBackend> backend(new FfsBackend(device, sb, blocks_per_group));
  if (fresh) {
    backend->InitFreshBitmap();
  } else {
    RETURN_IF_ERROR(backend->LoadZoneBitmap());
  }
  return backend;
}

StatusOr<uint32_t> FfsBackend::AllocInGroup(uint32_t group, uint32_t from) {
  const uint32_t group_base = sb_.first_data_block + group * blocks_per_group_;
  const uint32_t group_end = group + 1 >= num_groups_
                                 ? sb_.num_blocks
                                 : group_base + blocks_per_group_;
  const uint32_t start = std::max(from, group_base);
  for (uint32_t b = start; b < group_end; ++b) {
    if (!zone_bitmap_[b]) {
      zone_bitmap_[b] = true;
      free_blocks_--;
      bitmap_dirty_ = true;
      return b;
    }
  }
  for (uint32_t b = group_base; b < start && b < group_end; ++b) {
    if (!zone_bitmap_[b]) {
      zone_bitmap_[b] = true;
      free_blocks_--;
      bitmap_dirty_ = true;
      return b;
    }
  }
  return NoSpaceError("cylinder group full");
}

StatusOr<uint32_t> FfsBackend::AllocBlock(uint32_t lid, uint32_t pred_bno) {
  (void)lid;
  if (free_blocks_ == 0) {
    return NoSpaceError("file system full");
  }
  uint32_t group;
  uint32_t from = 0;
  if (pred_bno >= sb_.first_data_block) {
    // Stay in the predecessor's group, scanning from just after it.
    group = std::min((pred_bno - sb_.first_data_block) / blocks_per_group_, num_groups_ - 1);
    from = pred_bno + 1;
  } else {
    // First block of a file: rotate across groups, FFS-style.
    group = next_group_;
    next_group_ = (next_group_ + 1) % num_groups_;
  }
  // Fall over to the following groups when the preferred one is full.
  for (uint32_t attempt = 0; attempt < num_groups_; ++attempt) {
    auto result = AllocInGroup((group + attempt) % num_groups_, attempt == 0 ? from : 0);
    if (result.ok()) {
      return result;
    }
  }
  return NoSpaceError("file system full");
}

StatusOr<std::unique_ptr<MinixFs>> FormatFfs(BlockDevice* device, const FfsParams& params) {
  MinixOptions options;
  options.block_size = params.block_size;
  options.num_inodes = params.num_inodes;
  options.cache_bytes = params.cache_bytes;
  options.synchronous_metadata = true;
  options.readahead_blocks = params.readahead_blocks;
  options.cluster_writes = true;
  options.max_cluster_blocks = params.max_cluster_blocks;
  options.tenant = params.tenant;

  const MinixSuperblock sb = MinixFs::ComputeClassicLayout(device, options);
  ASSIGN_OR_RETURN(std::unique_ptr<FfsBackend> backend,
                   FfsBackend::Create(device, sb, /*fresh=*/true, params.blocks_per_group));
  return MinixFs::FormatWithBackend(std::move(backend), sb, options);
}

StatusOr<std::unique_ptr<MinixFs>> MountFfs(BlockDevice* device, const FfsParams& params) {
  MinixOptions options;
  options.block_size = params.block_size;
  options.num_inodes = params.num_inodes;
  options.cache_bytes = params.cache_bytes;
  options.synchronous_metadata = true;
  options.readahead_blocks = params.readahead_blocks;
  options.cluster_writes = true;
  options.max_cluster_blocks = params.max_cluster_blocks;
  options.tenant = params.tenant;

  std::vector<uint8_t> block(options.block_size);
  const uint64_t sector = static_cast<uint64_t>(options.block_size) / device->sector_size();
  RETURN_IF_ERROR(device->Read(sector, block));
  ASSIGN_OR_RETURN(MinixSuperblock sb, MinixSuperblock::DecodeFrom(block));
  ASSIGN_OR_RETURN(std::unique_ptr<FfsBackend> backend,
                   FfsBackend::Create(device, sb, /*fresh=*/false, params.blocks_per_group));
  return MinixFs::MountWithBackend(std::move(backend), sb, options);
}

}  // namespace ld

// FFS/SunOS-style baseline file system (the paper's third measured system).
//
// SunOS 4.1.3's file system is a Berkeley FFS derivative. The behaviours the
// paper's evaluation actually exercises are reproduced here on top of the
// shared MINIX core:
//
//   * cylinder groups — the disk is divided into allocation groups; each
//     file's blocks are allocated within its group, and new files rotate
//     across groups (FfsBackend);
//   * synchronous metadata — create and delete write i-nodes and directory
//     blocks synchronously, which is why SunOS loses the small-file
//     create/delete benchmark (MinixOptions::synchronous_metadata);
//   * 8-KB blocks and write clustering — adjacent dirty blocks are merged
//     into single requests, giving near-bandwidth sequential writes
//     (MinixOptions::cluster_writes);
//   * read-ahead.

#ifndef SRC_FFS_FFS_H_
#define SRC_FFS_FFS_H_

#include <memory>

#include "src/disk/block_device.h"
#include "src/minixfs/classic_backend.h"
#include "src/minixfs/minix_fs.h"

namespace ld {

struct FfsParams {
  uint32_t block_size = 8192;
  uint32_t num_inodes = 16384;
  uint64_t cache_bytes = 6144 * 1024;
  uint32_t blocks_per_group = 2048;  // 16 MB cylinder groups at 8 KB.
  uint32_t readahead_blocks = 8;
  uint32_t max_cluster_blocks = 16;  // 128-KB clusters.
  TenantId tenant = kDefaultTenant;  // Session id on a shared device.
};

// Cylinder-group block allocator: the group is chosen from the predecessor
// block when the file already has one, otherwise groups are assigned
// round-robin, spreading files across the disk the way FFS does.
class FfsBackend : public ClassicBackend {
 public:
  static StatusOr<std::unique_ptr<FfsBackend>> Create(BlockDevice* device,
                                                      const MinixSuperblock& sb, bool fresh,
                                                      uint32_t blocks_per_group);

  StatusOr<uint32_t> AllocBlock(uint32_t lid, uint32_t pred_bno) override;

  uint32_t num_groups() const { return num_groups_; }

 private:
  FfsBackend(BlockDevice* device, const MinixSuperblock& sb, uint32_t blocks_per_group);

  StatusOr<uint32_t> AllocInGroup(uint32_t group, uint32_t from);

  uint32_t blocks_per_group_;
  uint32_t num_groups_ = 1;
  uint32_t next_group_ = 0;  // Round-robin cursor for first blocks.
};

// Formats / mounts the FFS baseline on a raw device.
StatusOr<std::unique_ptr<MinixFs>> FormatFfs(BlockDevice* device, const FfsParams& params);
StatusOr<std::unique_ptr<MinixFs>> MountFfs(BlockDevice* device, const FfsParams& params);

}  // namespace ld

#endif  // SRC_FFS_FFS_H_

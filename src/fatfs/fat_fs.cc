#include "src/fatfs/fat_fs.h"

#include <algorithm>
#include <cstring>

#include "src/util/crc32.h"
#include "src/util/serialize.h"

namespace ld {

namespace {
constexpr uint32_t kRootMagic = 0x46415430;  // "FAT0"
}  // namespace

StatusOr<std::unique_ptr<FatFs>> FatFs::Format(LogicalDisk* ld) {
  std::unique_ptr<FatFs> fs(new FatFs(ld));
  fs->block_size_ = ld->default_block_size();
  ListHints hints;
  ASSIGN_OR_RETURN(fs->meta_list_, ld->NewList(kBeginOfListOfLists, hints));
  ASSIGN_OR_RETURN(fs->root_bid_, ld->NewBlock(fs->meta_list_, kBeginOfList));
  if (fs->root_bid_ != 1) {
    return FailedPreconditionError("FatFs::Format requires a fresh LD volume");
  }
  RETURN_IF_ERROR(fs->StoreRoot());
  return fs;
}

StatusOr<std::unique_ptr<FatFs>> FatFs::Mount(LogicalDisk* ld) {
  std::unique_ptr<FatFs> fs(new FatFs(ld));
  fs->block_size_ = ld->default_block_size();
  fs->root_bid_ = 1;
  RETURN_IF_ERROR(fs->LoadRoot());
  return fs;
}

Status FatFs::StoreRoot() {
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU32(kRootMagic);
  enc.PutU32(meta_list_);
  enc.PutU32(static_cast<uint32_t>(slots_.size()));
  for (const Slot& slot : slots_) {
    enc.PutString(slot.name);
    enc.PutU32(slot.list);
    enc.PutU32(slot.size);
  }
  enc.PutU32(Crc32(payload));
  if (payload.size() > block_size_) {
    return NoSpaceError("root directory full");
  }
  std::vector<uint8_t> block(block_size_, 0);
  std::memcpy(block.data(), payload.data(), payload.size());
  return ld_->Write(root_bid_, block);
}

Status FatFs::LoadRoot() {
  std::vector<uint8_t> block(block_size_);
  RETURN_IF_ERROR(ld_->Read(root_bid_, block));
  Decoder dec(block);
  const uint32_t magic = dec.GetU32();
  if (!dec.ok() || magic != kRootMagic) {
    return CorruptionError("not a FatFs volume");
  }
  meta_list_ = dec.GetU32();
  const uint32_t count = dec.GetU32();
  slots_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    Slot slot;
    slot.name = dec.GetString();
    slot.list = dec.GetU32();
    slot.size = dec.GetU32();
    slots_.push_back(std::move(slot));
  }
  const size_t body_end = dec.position();
  const uint32_t crc = dec.GetU32();
  RETURN_IF_ERROR(dec.ToStatus("FatFs root"));
  if (crc != Crc32(std::span<const uint8_t>(block).subspan(0, body_end))) {
    return CorruptionError("FatFs root crc mismatch");
  }
  return OkStatus();
}

StatusOr<size_t> FatFs::FindSlot(const std::string& name) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].name == name) {
      return i;
    }
  }
  return NotFoundError("no such file: " + name);
}

Status FatFs::Create(const std::string& name) {
  if (name.empty() || name.size() > kNameMax) {
    return InvalidArgumentError("bad 8.3-style name");
  }
  if (FindSlot(name).ok()) {
    return AlreadyExistsError("exists: " + name);
  }
  Slot slot;
  slot.name = name;
  // The file IS a list — this is where the FAT would have been born.
  ListHints hints;
  hints.cluster = true;
  ASSIGN_OR_RETURN(slot.list, ld_->NewList(meta_list_, hints));
  slots_.push_back(std::move(slot));
  return StoreRoot();
}

Status FatFs::Remove(const std::string& name) {
  ASSIGN_OR_RETURN(size_t index, FindSlot(name));
  RETURN_IF_ERROR(ld_->DeleteList(slots_[index].list, kNilLid));  // Frees all blocks.
  slots_.erase(slots_.begin() + index);
  return StoreRoot();
}

StatusOr<std::vector<FatDirEntry>> FatFs::List() {
  std::vector<FatDirEntry> entries;
  for (const Slot& slot : slots_) {
    entries.push_back(FatDirEntry{slot.name, slot.size});
  }
  return entries;
}

StatusOr<uint32_t> FatFs::FileSize(const std::string& name) {
  ASSIGN_OR_RETURN(size_t index, FindSlot(name));
  return slots_[index].size;
}

Status FatFs::Write(const std::string& name, uint64_t offset, std::span<const uint8_t> data) {
  ASSIGN_OR_RETURN(size_t index, FindSlot(name));
  Slot& slot = slots_[index];
  const uint32_t bs = block_size_;

  // Extend the cluster chain (= the list) as far as the write needs.
  const uint64_t last_needed = (offset + data.size() + bs - 1) / bs;
  uint64_t have = (slot.size + bs - 1) / bs;
  std::vector<uint8_t> zero(bs, 0);
  while (have < last_needed) {
    ASSIGN_OR_RETURN(Bid bid, ld_->NewBlock(slot.list, slot.last_block, bs));
    slot.last_block = bid;
    have++;
  }

  uint64_t pos = offset;
  size_t done = 0;
  std::vector<uint8_t> block(bs);
  while (done < data.size()) {
    const uint64_t cluster = pos / bs;
    const uint32_t within = static_cast<uint32_t>(pos % bs);
    const size_t chunk = std::min<size_t>(bs - within, data.size() - done);
    // The FAT walk, without a FAT: offset addressing into the list.
    ASSIGN_OR_RETURN(Bid bid, ld_->BlockAtIndex(slot.list, cluster));
    if (chunk < bs) {
      RETURN_IF_ERROR(ld_->Read(bid, block));  // Read-modify-write.
    }
    std::memcpy(block.data() + within, data.data() + done, chunk);
    RETURN_IF_ERROR(ld_->Write(bid, block));
    pos += chunk;
    done += chunk;
  }
  if (pos > slot.size) {
    slot.size = static_cast<uint32_t>(pos);
    RETURN_IF_ERROR(StoreRoot());
  }
  // Track the chain tail for future appends.
  if (last_needed > 0) {
    ASSIGN_OR_RETURN(slot.last_block, ld_->BlockAtIndex(slot.list, last_needed - 1));
  }
  return OkStatus();
}

StatusOr<size_t> FatFs::Read(const std::string& name, uint64_t offset, std::span<uint8_t> out) {
  ASSIGN_OR_RETURN(size_t index, FindSlot(name));
  const Slot& slot = slots_[index];
  if (offset >= slot.size) {
    return size_t{0};
  }
  const uint32_t bs = block_size_;
  const size_t to_read = std::min<size_t>(out.size(), slot.size - offset);
  uint64_t pos = offset;
  size_t done = 0;
  std::vector<uint8_t> block(bs);
  while (done < to_read) {
    const uint64_t cluster = pos / bs;
    const uint32_t within = static_cast<uint32_t>(pos % bs);
    const size_t chunk = std::min<size_t>(bs - within, to_read - done);
    ASSIGN_OR_RETURN(Bid bid, ld_->BlockAtIndex(slot.list, cluster));
    RETURN_IF_ERROR(ld_->Read(bid, block));
    std::memcpy(out.data() + done, block.data() + within, chunk);
    pos += chunk;
    done += chunk;
  }
  return done;
}

Status FatFs::Sync() { return ld_->Flush(); }

Status FatFs::Close() {
  RETURN_IF_ERROR(Sync());
  return ld_->Shutdown();
}

}  // namespace ld

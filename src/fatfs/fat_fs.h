// FatFs: an MS-DOS-style file system on LD with the File Allocation Table
// eliminated (paper §5.4):
//
//   "if we combine an implementation of the LD interface with an MS DOS
//    file system, we could eliminate the duplication of information in the
//    File Allocation Table and LD's block-number map."
//
// In a real FAT file system every file is a chain of clusters threaded
// through the table; here every file simply *is* an LD list, and the
// cluster-chain walk FAT(FAT(...start...)) becomes offset addressing:
// BlockAtIndex(file_list, cluster_index). No table exists on disk, no table
// is cached in memory, and no table block is ever written — LD's
// block-number map already holds exactly that information.
//
// The namespace is deliberately DOS-flat: one root directory of 8.3-style
// entries (the demonstration is the FAT elimination, not directories).

#ifndef SRC_FATFS_FAT_FS_H_
#define SRC_FATFS_FAT_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ld/logical_disk.h"

namespace ld {

struct FatDirEntry {
  std::string name;  // Up to 12 characters.
  uint32_t size = 0;
};

class FatFs {
 public:
  static constexpr size_t kNameMax = 12;

  // Formats on a freshly formatted LD / mounts an existing volume.
  static StatusOr<std::unique_ptr<FatFs>> Format(LogicalDisk* ld);
  static StatusOr<std::unique_ptr<FatFs>> Mount(LogicalDisk* ld);

  Status Create(const std::string& name);
  Status Remove(const std::string& name);
  StatusOr<std::vector<FatDirEntry>> List();
  StatusOr<uint32_t> FileSize(const std::string& name);

  Status Write(const std::string& name, uint64_t offset, std::span<const uint8_t> data);
  StatusOr<size_t> Read(const std::string& name, uint64_t offset, std::span<uint8_t> out);

  Status Sync();
  Status Close();

 private:
  struct Slot {
    std::string name;
    Lid list = kNilLid;
    uint32_t size = 0;
    Bid last_block = kNilBid;  // Append hint (in-memory only).
  };

  explicit FatFs(LogicalDisk* ld) : ld_(ld) {}

  Status LoadRoot();
  Status StoreRoot();
  StatusOr<size_t> FindSlot(const std::string& name);

  LogicalDisk* ld_;
  uint32_t block_size_ = 0;
  Bid root_bid_ = kNilBid;  // One block holding the root directory.
  Lid meta_list_ = kNilLid;
  std::vector<Slot> slots_;
};

}  // namespace ld

#endif  // SRC_FATFS_FAT_FS_H_

// Plain-text table printer used by every bench binary to print the paper's
// tables next to the measured values.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace ld {

class TextTable {
 public:
  // Column headers define the table width.
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Adds a horizontal separator line between row groups.
  void AddSeparator();

  // Renders the table with aligned columns.
  std::string ToString() const;
  void Print() const;

  // Formats a double with the given precision ("2064", "8.5", ...).
  static std::string Num(double value, int precision = 0);
  // "x%" formatting.
  static std::string Percent(double fraction, int precision = 0);

 private:
  static constexpr const char* kSeparatorTag = "\x01sep";

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ld

#endif  // SRC_UTIL_TABLE_H_

// Minimal leveled logger. Quiet by default so benchmarks and tests stay clean;
// raise the level with ld::SetLogLevel or the LD_LOG environment variable
// (trace|debug|info|warn|error|off).

#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace ld {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr; used via the LD_LOG macro below.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Stream-style logging:  LD_LOG(kDebug) << "cleaned segment " << seg;
// The stream body is not evaluated when the level is filtered out.
#define LD_LOG(level)                                                  \
  for (bool ld_log_once = ::ld::LogLevel::level >= ::ld::GetLogLevel(); ld_log_once;) \
    for (::std::ostringstream ld_log_stream; ld_log_once;                             \
         ::ld::LogMessage(::ld::LogLevel::level, __FILE__, __LINE__, ld_log_stream.str()), \
                          ld_log_once = false)                                        \
  ld_log_stream

}  // namespace ld

#endif  // SRC_UTIL_LOG_H_

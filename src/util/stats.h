// Small statistics accumulator used by the benchmark harness: the paper runs
// each experiment >= 10 times and reports means with standard deviations
// mostly under 1% of the mean; we do the same.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace ld {

class RunningStats {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  // StdDev as a fraction of the mean (0 if mean is 0).
  double RelativeStdDev() const;
  double Percentile(double p) const;  // p in [0, 100].

 private:
  std::vector<double> samples_;
};

}  // namespace ld

#endif  // SRC_UTIL_STATS_H_

#include "src/util/serialize.h"

namespace ld {

void Encoder::PutString(const std::string& s) {
  PutU16(static_cast<uint16_t>(s.size()));
  out_->insert(out_->end(), s.begin(), s.end());
}

uint64_t Decoder::GetLe(int bytes) {
  if (failed_ || remaining() < static_cast<size_t>(bytes)) {
    failed_ = true;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += bytes;
  return v;
}

std::vector<uint8_t> Decoder::GetBytes(size_t n) {
  if (failed_ || remaining() < n) {
    failed_ = true;
    return {};
  }
  std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::string Decoder::GetString() {
  const uint16_t n = GetU16();
  if (failed_ || remaining() < n) {
    failed_ = true;
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

void Decoder::Skip(size_t n) {
  if (failed_ || remaining() < n) {
    failed_ = true;
    return;
  }
  pos_ += n;
}

Status Decoder::ToStatus(const std::string& context) const {
  if (ok()) {
    return OkStatus();
  }
  return CorruptionError("decode failed: " + context);
}

}  // namespace ld

#include "src/util/random.h"

#include <cassert>

namespace ld {

namespace {

// splitmix64 is the recommended seeding procedure for xoshiro generators.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Below(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

}  // namespace ld

#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ld {

void RunningStats::Add(double sample) { samples_.push_back(sample); }

double RunningStats::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double RunningStats::StdDev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double sq = 0.0;
  for (double s : samples_) {
    sq += (s - mean) * (s - mean);
  }
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double RunningStats::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunningStats::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunningStats::RelativeStdDev() const {
  const double mean = Mean();
  if (mean == 0.0) {
    return 0.0;
  }
  return StdDev() / mean;
}

double RunningStats::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace ld

// Lightweight error handling for the Logical Disk project.
//
// I/O paths do not use exceptions; fallible operations return ld::Status or
// ld::StatusOr<T>. Codes mirror the failure classes a disk-management layer
// actually surfaces to a file system.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ld {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // Malformed request (bad block id, bad size, ...).
  kNotFound,          // Unknown block / list / file.
  kAlreadyExists,     // Name or id collision.
  kNoSpace,           // Disk (or reservation) exhausted.
  kIoError,           // Device-level failure.
  kCorruption,        // On-disk structure failed validation.
  kFailedPrecondition,// Operation illegal in the current state.
  kUnimplemented,     // Feature not supported by this implementation.
  kDegraded,          // Device lost writes; layer is read-only until repaired.
};

// Human-readable name for an error code ("NO_SPACE", ...).
const char* ErrorCodeName(ErrorCode code);

// A Status is either OK or an error code plus a context message.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NO_SPACE: segment pool exhausted".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status NoSpaceError(std::string message);
Status IoError(std::string message);
Status CorruptionError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status DegradedError(std::string message);

// StatusOr<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "StatusOr must not hold an OK status");
  }
  StatusOr(T value) : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagates errors up the call stack:  RETURN_IF_ERROR(disk->Write(...));
#define RETURN_IF_ERROR(expr)             \
  do {                                    \
    ::ld::Status status_ = (expr);        \
    if (!status_.ok()) {                  \
      return status_;                     \
    }                                     \
  } while (0)

// Unwraps a StatusOr or propagates its error:
//   ASSIGN_OR_RETURN(Bid bid, ld->NewBlock(lid, pred));
#define LD_STATUS_CONCAT_INNER(a, b) a##b
#define LD_STATUS_CONCAT(a, b) LD_STATUS_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN(decl, expr)                             \
  auto LD_STATUS_CONCAT(statusor_, __LINE__) = (expr);           \
  if (!LD_STATUS_CONCAT(statusor_, __LINE__).ok()) {             \
    return LD_STATUS_CONCAT(statusor_, __LINE__).status();       \
  }                                                              \
  decl = std::move(LD_STATUS_CONCAT(statusor_, __LINE__)).value()

}  // namespace ld

#endif  // SRC_UTIL_STATUS_H_

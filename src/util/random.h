// Deterministic PRNG for workload generation and property tests.
//
// xoshiro256** — fast, good statistical quality, and fully reproducible across
// platforms, which matters because benchmark results are compared against the
// paper's tables.

#ifndef SRC_UTIL_RANDOM_H_
#define SRC_UTIL_RANDOM_H_

#include <cstdint>

namespace ld {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t Next();

  // Uniform over [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Chance(double p);

 private:
  uint64_t state_[4];
};

}  // namespace ld

#endif  // SRC_UTIL_RANDOM_H_

#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ld {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddSeparator() { rows_.push_back({kSeparatorTag}); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) {
      continue;
    }
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells, std::ostringstream& out) {
    out << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto render_separator = [&](std::ostringstream& out) {
    out << "+";
    for (size_t c = 0; c < headers_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };

  std::ostringstream out;
  render_separator(out);
  render_line(headers_, out);
  render_separator(out);
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) {
      render_separator(out);
    } else {
      render_line(row, out);
    }
  }
  render_separator(out);
  return out.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TextTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::Percent(double fraction, int precision) {
  return Num(fraction * 100.0, precision) + "%";
}

}  // namespace ld

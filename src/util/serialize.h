// Little-endian encoders/decoders for on-disk structures.
//
// Every persistent structure in this project (segment summaries, superblocks,
// i-nodes, checkpoint regions) is serialized explicitly through these helpers
// so the on-disk format is well-defined and independent of host layout.

#ifndef SRC_UTIL_SERIALIZE_H_
#define SRC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ld {

// Appends fixed-width little-endian values to a byte vector.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU24(uint32_t v) { PutLe(v, 3); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU48(uint64_t v) { PutLe(v, 6); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutBytes(std::span<const uint8_t> bytes) {
    out_->insert(out_->end(), bytes.begin(), bytes.end());
  }
  // Length-prefixed (u16) string, for names in superblocks.
  void PutString(const std::string& s);

  size_t size() const { return out_->size(); }

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t>* out_;
};

// Reads fixed-width little-endian values from a byte span with bounds checks.
class Decoder {
 public:
  explicit Decoder(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t GetU8() { return static_cast<uint8_t>(GetLe(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetLe(2)); }
  uint32_t GetU24() { return static_cast<uint32_t>(GetLe(3)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLe(4)); }
  uint64_t GetU48() { return GetLe(6); }
  uint64_t GetU64() { return GetLe(8); }
  std::vector<uint8_t> GetBytes(size_t n);
  std::string GetString();

  // Skips n bytes (marks the decoder failed if out of range).
  void Skip(size_t n);

  // Converts decode failure into a Status for callers.
  Status ToStatus(const std::string& context) const;

 private:
  uint64_t GetLe(int bytes);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace ld

#endif  // SRC_UTIL_SERIALIZE_H_

#include "src/util/status.h"

namespace ld {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = ErrorCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status NoSpaceError(std::string message) { return Status(ErrorCode::kNoSpace, std::move(message)); }
Status IoError(std::string message) { return Status(ErrorCode::kIoError, std::move(message)); }
Status CorruptionError(std::string message) {
  return Status(ErrorCode::kCorruption, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status DegradedError(std::string message) {
  return Status(ErrorCode::kDegraded, std::move(message));
}

}  // namespace ld

#include "src/util/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ld {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("LD_LOG");
  if (env == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "trace") == 0) {
    return LogLevel::kTrace;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "off") == 0) {
    return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

LogLevel g_level = ParseLevelFromEnv();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  const char* basename = std::strrchr(file, '/');
  basename = (basename != nullptr) ? basename + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), basename, line, message.c_str());
}

}  // namespace ld

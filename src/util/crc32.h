// CRC-32 (IEEE 802.3 polynomial) for validating on-disk structures: segment
// summaries, checkpoint regions, and superblocks.

#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstdint>
#include <span>

namespace ld {

// One-shot CRC of a byte span.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: crc = Crc32Update(crc, chunk) starting from Crc32Init().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, std::span<const uint8_t> data);
uint32_t Crc32Final(uint32_t crc);

}  // namespace ld

#endif  // SRC_UTIL_CRC32_H_

// Reporting helpers shared by the benchmark binaries: every bench prints a
// banner explaining which paper table/figure it regenerates, and rows that
// put the paper's number (when the text gives one) next to the measured one.

#ifndef SRC_HARNESS_REPORT_H_
#define SRC_HARNESS_REPORT_H_

#include <string>

#include "src/disk/block_device.h"
#include "src/lld/lld_maintenance.h"
#include "src/lld/reports.h"

namespace ld {

// Prints the standard bench banner.
void PrintBanner(const std::string& experiment_id, const std::string& description);

// Formats "measured (paper: X, ratio R)" comparison text; paper <= 0 means
// the paper's table did not survive into the available text, so only the
// measured value is shown.
std::string Compare(double measured, double paper, const std::string& unit, int precision = 0);

// Prints one line of request-queue counters for a device: requests queued,
// adjacent-request merges, queue-depth high-water mark, and mean wait before
// service. `label` names the configuration the stats belong to.
void PrintDiskQueueStats(const std::string& label, const DiskStats& stats);

// Prints one line of device-health counters: requests that failed at the
// device, extra attempts issued by the ReliableIo retry shim, and requests
// that succeeded only after retrying. All zeros on a fault-free run.
void PrintDiskHealthStats(const std::string& label, const DiskStats& stats);

// Prints one line of buffer-cache read-path counters mirrored into the
// device's DiskStats: lookups served from cache vs. from the device, demand
// lookups absorbed by a read-ahead fill, and read-ahead fills that were
// dropped without ever being referenced.
void PrintReadPathStats(const std::string& label, const DiskStats& stats);

// Prints one line per tenant from the shared device's per-tenant
// accounting: ops, bytes moved, mean queue wait, read-latency p50/p99, and
// requests that waited past the starvation threshold. No-op when the device
// recorded no tenant activity.
void PrintTenantStats(const std::string& label, const DiskStats& stats, uint32_t sector_size);

// Prints one line summarizing how an Open() rebuilt its state: recovery
// mode, typed fallback reason, scan shape, and the headline counters.
void PrintRecoveryReport(const std::string& label, const RecoveryReport& report);

// Prints a two-line summary of a background maintenance scheduler: slices
// run per duty, idle-gate skips, and the accumulated scrub/rebuild reports.
void PrintMaintenanceStats(const std::string& label, const MaintenanceStats& stats);

}  // namespace ld

#endif  // SRC_HARNESS_REPORT_H_

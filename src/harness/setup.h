// Standard experiment setups shared by the benchmark binaries: the paper's
// measurement platform was a 400-MB partition of an HP C3010 disk; the three
// measured file systems were MINIX LLD, MINIX, and SunOS (FFS).

#ifndef SRC_HARNESS_SETUP_H_
#define SRC_HARNESS_SETUP_H_

#include <memory>
#include <string>

#include "src/disk/device_factory.h"
#include "src/ffs/ffs.h"
#include "src/lld/lld.h"
#include "src/lld/lld_maintenance.h"
#include "src/minixfs/minix_fs.h"

namespace ld {

enum class FsKind {
  kMinixLld,              // MINIX over LLD, one list per file.
  kMinixLldSingleList,    // MINIX over LLD, one global list (first integration).
  kMinixLldSmallInodes,   // MINIX over LLD, 64-byte i-node blocks.
  kMinix,                 // Classic MINIX on the raw disk.
  kSunOs,                 // FFS/SunOS-style baseline.
};

const char* FsKindName(FsKind kind);

// A complete file system under test with its simulated device and clock.
struct FsUnderTest {
  std::string name;
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<BlockDevice> disk;
  std::unique_ptr<LogStructuredDisk> lld;  // Null for non-LD systems.
  std::unique_ptr<MinixFs> fs;
  // Idle-driven background maintenance; null unless params.maintenance (or
  // LD_MAINT) asked for it. The workload driver pumps maintenance->Step().
  std::unique_ptr<MaintenanceScheduler> maintenance;

  // Resets clock, device, LLD, and file-system counters after setup so
  // measurements exclude formatting (and each phase starts from zero).
  void ResetMeasurement();

  // Runs the file system's consistency check; with `scrub` it is
  // "fsck --scrub": the LD's media scrub runs first and the report carries
  // what it repaired and whether the volume is degraded. Non-LD systems
  // reject scrub with UNIMPLEMENTED.
  StatusOr<MinixFsckReport> Fsck(bool scrub = false);
};

struct SetupParams {
  uint64_t partition_bytes = 400ull << 20;  // The paper's 400-MB partition.
  // Storage backend. `device.geometry` is always derived from
  // partition_bytes (and an unset NVMe capacity matches it); set
  // `device.backend`/`device.channels`/queue knobs to run the same file
  // system on a different device.
  DeviceOptions device = DeviceOptions::HpC3010(400ull << 20);
  uint32_t minix_block_size = 4096;
  uint32_t num_inodes = 16384;
  uint64_t cache_bytes = 6144 * 1024;
  LldOptions lld;  // Segment size etc. for LD-based systems.
  // LD modes: mark file data lists compressible (requires lld.compressor).
  bool compress_file_data = false;
  // Read-path knobs (forwarded to MinixOptions). `async_reads = false`
  // restores the fully synchronous legacy read path — the differential
  // baseline the conformance suite compares against. `ld_readahead` turns
  // per-file read-ahead on for LD backends too (off = the paper's §4.1
  // behaviour).
  uint32_t readahead_blocks = 8;
  bool async_reads = true;
  bool ld_readahead = false;
  // Tenant session id threaded down the whole stack (fs → backend → LD →
  // device request context). Single-FS setups keep the default.
  TenantId tenant = kDefaultTenant;
  // Attach an idle-driven MaintenanceScheduler to LD-based stacks
  // (overridable by LD_MAINT; pacing knobs come from LD_MAINT_*). The
  // scheduler gets its own tenant id — one past the session's — stamped on
  // scrub/checkpoint/restripe I/O and set as the LD's rebuild_tenant, and
  // cadence-driven checkpoint frames move off the seal path onto it.
  bool maintenance = false;
};

// A file system (plus its LLD, for LD kinds) built on a caller-owned device:
// the building block shared by the single-FS setup below and the
// multi-tenant rig (src/harness/tenants.h), which formats one stack per
// partition of a shared device.
struct FsStack {
  std::unique_ptr<LogStructuredDisk> lld;  // Null for non-LD systems.
  std::unique_ptr<MinixFs> fs;
  std::unique_ptr<MaintenanceScheduler> maintenance;  // Null unless enabled.
};

// Formats `kind` onto `device` with params' file-system knobs (the device
// knobs in params are ignored — the caller already built the device).
StatusOr<FsStack> MakeFsStack(BlockDevice* device, FsKind kind, const SetupParams& params);

StatusOr<FsUnderTest> MakeFsUnderTest(FsKind kind, const SetupParams& params);

}  // namespace ld

#endif  // SRC_HARNESS_SETUP_H_

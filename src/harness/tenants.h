// Multi-tenant harness: N tenant sessions — each a full MINIX-on-LLD (or
// classic/FFS) stack on its own PartitionDevice slice — sharing one
// simulated device, its channel set, and its clock. A cooperative
// round-robin scheduler interleaves per-tenant workload steps on the shared
// clock, so tenants contend for channel time exactly the way concurrent LD
// clients would on real hardware; the device's QoS dispatch layer
// (src/disk/qos.h) arbitrates between them.

#ifndef SRC_HARNESS_TENANTS_H_
#define SRC_HARNESS_TENANTS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/disk/partition_device.h"
#include "src/harness/setup.h"

namespace ld {

// One tenant's full stack. Declaration order matters for destruction: the
// file system (and its LLD) must die before the partition they run on.
struct TenantSession {
  TenantId id = kDefaultTenant;
  std::unique_ptr<PartitionDevice> part;   // Slice of the shared device.
  std::unique_ptr<LogStructuredDisk> lld;  // Null for non-LD kinds.
  std::unique_ptr<MinixFs> fs;
};

struct MultiTenantParams {
  uint32_t num_tenants = 4;
  // Per-tenant slice; the shared device's capacity is num_tenants * this.
  uint64_t bytes_per_tenant = 64ull << 20;
  // Backend/channel/queue knobs for the shared device. Geometry (and an
  // unset NVMe capacity) is derived from the total rig size; the qos field
  // here is overwritten from `qos` below.
  DeviceOptions device = DeviceOptions::HpC3010(0);
  // Dispatch policy between tenants. num_tenants is overwritten with the
  // rig's tenant count so Active() reflects the actual session count.
  QosConfig qos;
  FsKind kind = FsKind::kMinixLld;
  // File-system knobs for every tenant stack (partition_bytes/device/tenant
  // fields are ignored — the rig provides those).
  SetupParams fs;
};

// N sessions over one device. Movable; destruction tears down sessions
// before the shared device.
struct MultiTenantRig {
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<BlockDevice> disk;  // Shared by all sessions.
  std::vector<TenantSession> tenants;

  // Resets the clock and every per-run counter (device global/channel/tenant
  // stats, LLD counters, fs + cache stats) so a measurement phase starts
  // from zero.
  void ResetMeasurement();
};

StatusOr<MultiTenantRig> MakeMultiTenantRig(const MultiTenantParams& params);

// Cooperative round-robin multiplexer for tenant workloads on the shared
// sim clock. Each tenant registers a step function doing one bounded slice
// of its workload; RunAll cycles through live tenants until every step
// reports completion. Because the simulation is single-threaded, this
// interleaving *is* the concurrency: each slice queues device work that
// contends with the other tenants' in-flight requests.
class TenantScheduler {
 public:
  // Returns true while the tenant has more work, false when done.
  using Step = std::function<StatusOr<bool>()>;

  void Add(std::string name, Step step);

  // Round-robins until all tenants finish. Fails fast on the first step
  // error, naming the tenant.
  Status RunAll();

  size_t size() const { return entries_.size(); }
  const std::string& name(size_t i) const { return entries_[i].name; }
  // Number of slices the tenant ran before finishing.
  uint64_t steps_run(size_t i) const { return entries_[i].steps; }

 private:
  struct Entry {
    std::string name;
    Step step;
    bool done = false;
    uint64_t steps = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace ld

#endif  // SRC_HARNESS_TENANTS_H_

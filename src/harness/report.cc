#include "src/harness/report.h"

#include <cstdio>

#include "src/util/table.h"

namespace ld {

void PrintBanner(const std::string& experiment_id, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

void PrintDiskQueueStats(const std::string& label, const DiskStats& stats) {
  const double mean_wait =
      stats.queued_requests == 0 ? 0.0 : stats.queue_wait_ms / static_cast<double>(stats.queued_requests);
  std::printf("  %-24s queued %-8llu merged %-6llu max depth %-4llu mean wait %.3f ms\n",
              label.c_str(), static_cast<unsigned long long>(stats.queued_requests),
              static_cast<unsigned long long>(stats.merged_requests),
              static_cast<unsigned long long>(stats.max_queue_depth), mean_wait);
}

void PrintDiskHealthStats(const std::string& label, const DiskStats& stats) {
  std::printf(
      "  %-24s errors r/w %llu/%llu  retries r/w %llu/%llu  recovered %llu\n",
      label.c_str(), static_cast<unsigned long long>(stats.read_errors),
      static_cast<unsigned long long>(stats.write_errors),
      static_cast<unsigned long long>(stats.read_retries),
      static_cast<unsigned long long>(stats.write_retries),
      static_cast<unsigned long long>(stats.transient_recoveries));
  // Write amplification and wear, when the device saw any media writes: how
  // many bytes the media absorbed per user payload byte, and how evenly the
  // segment programs spread across the volume.
  if (stats.total_bytes_written > 0) {
    std::printf(
        "  %-24s user %.2f MB  media %.2f MB  WAF %.3f  segment writes %llu  max wear %llu\n",
        "", static_cast<double>(stats.user_bytes_written) / (1024.0 * 1024.0),
        static_cast<double>(stats.total_bytes_written) / (1024.0 * 1024.0), stats.Waf(),
        static_cast<unsigned long long>(stats.segment_writes_total),
        static_cast<unsigned long long>(stats.segment_wear_max));
  }
  // On multi-channel devices a dead or dying channel shows up as one row's
  // error column towering over its peers — print the breakdown so the bench
  // output localizes the fault, not just counts it.
  if (stats.channel_count() > 1) {
    for (size_t ch = 0; ch < stats.channel_count(); ++ch) {
      const ChannelStats& c = stats.channel(ch);
      if (c.read_ops + c.write_ops + c.read_errors + c.write_errors == 0) {
        continue;
      }
      std::printf(
          "    channel %-2zu             errors r/w %llu/%llu  retries r/w %llu/%llu  "
          "ops r/w %llu/%llu\n",
          ch, static_cast<unsigned long long>(c.read_errors),
          static_cast<unsigned long long>(c.write_errors),
          static_cast<unsigned long long>(c.read_retries),
          static_cast<unsigned long long>(c.write_retries),
          static_cast<unsigned long long>(c.read_ops),
          static_cast<unsigned long long>(c.write_ops));
    }
  }
}

void PrintReadPathStats(const std::string& label, const DiskStats& stats) {
  const uint64_t lookups = stats.cache_hits + stats.cache_misses;
  const double hit_rate =
      lookups == 0 ? 0.0 : 100.0 * static_cast<double>(stats.cache_hits) / static_cast<double>(lookups);
  std::printf(
      "  %-24s hits %-8llu misses %-8llu (%.1f%% hit)  prefetch hits %-6llu wasted %llu\n",
      label.c_str(), static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses), hit_rate,
      static_cast<unsigned long long>(stats.prefetch_hits),
      static_cast<unsigned long long>(stats.prefetch_wasted));
}

void PrintTenantStats(const std::string& label, const DiskStats& stats, uint32_t sector_size) {
  if (stats.tenant_count() == 0) {
    return;
  }
  std::printf("  %s per-tenant:\n", label.c_str());
  for (size_t i = 0; i < stats.tenant_count(); ++i) {
    const TenantStats& t = stats.tenant(i);
    const uint64_t ops = t.read_ops + t.write_ops;
    if (ops == 0) {
      continue;
    }
    const double mb =
        static_cast<double>(t.sectors_read + t.sectors_written) * sector_size / (1024.0 * 1024.0);
    const double mean_wait = t.queue_wait_ms / static_cast<double>(ops);
    std::printf(
        "    tenant %-2zu ops %-7llu (%llu r / %llu w)  %7.1f MB  wait %7.3f ms  "
        "read p50/p99 %7.3f/%8.3f ms  starved %llu\n",
        i, static_cast<unsigned long long>(ops), static_cast<unsigned long long>(t.read_ops),
        static_cast<unsigned long long>(t.write_ops), mb, mean_wait,
        t.read_latency.Quantile(0.5), t.read_latency.Quantile(0.99),
        static_cast<unsigned long long>(t.starved_requests));
  }
}

void PrintRecoveryReport(const std::string& label, const RecoveryReport& report) {
  std::printf("  %-24s %s\n", label.c_str(), report.ToString().c_str());
}

void PrintMaintenanceStats(const std::string& label, const MaintenanceStats& stats) {
  std::printf(
      "  %-24s steps %-7llu idle-skips %-7llu scrub %llu slices/%llu seg/%llu cycles  "
      "ckpt frames %llu  rebuild %llu slices/%llu seg  restripe %llu passes/%llu sets\n",
      label.c_str(), static_cast<unsigned long long>(stats.steps),
      static_cast<unsigned long long>(stats.idle_skips),
      static_cast<unsigned long long>(stats.scrub_slices),
      static_cast<unsigned long long>(stats.scrub_segments),
      static_cast<unsigned long long>(stats.scrub_cycles),
      static_cast<unsigned long long>(stats.checkpoint_frames),
      static_cast<unsigned long long>(stats.rebuild_slices),
      static_cast<unsigned long long>(stats.rebuild_segments),
      static_cast<unsigned long long>(stats.restripe_passes),
      static_cast<unsigned long long>(stats.stripes_formed));
  std::printf("  %-24s %s  %s\n", "", stats.last_scrub.ToString().c_str(),
              stats.last_rebuild.ToString().c_str());
}

std::string Compare(double measured, double paper, const std::string& unit, int precision) {
  std::string out = TextTable::Num(measured, precision);
  if (!unit.empty()) {
    out += " " + unit;
  }
  if (paper > 0) {
    out += " (paper: " + TextTable::Num(paper, precision) + ", x" +
           TextTable::Num(measured / paper, 2) + ")";
  }
  return out;
}

}  // namespace ld

#include "src/harness/report.h"

#include <cstdio>

#include "src/util/table.h"

namespace ld {

void PrintBanner(const std::string& experiment_id, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

std::string Compare(double measured, double paper, const std::string& unit, int precision) {
  std::string out = TextTable::Num(measured, precision);
  if (!unit.empty()) {
    out += " " + unit;
  }
  if (paper > 0) {
    out += " (paper: " + TextTable::Num(paper, precision) + ", x" +
           TextTable::Num(measured / paper, 2) + ")";
  }
  return out;
}

}  // namespace ld

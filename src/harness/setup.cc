#include "src/harness/setup.h"

#include "src/harness/env_knobs.h"

namespace ld {

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kMinixLld:
      return "MINIX LLD";
    case FsKind::kMinixLldSingleList:
      return "MINIX LLD (single list)";
    case FsKind::kMinixLldSmallInodes:
      return "MINIX LLD (small i-nodes)";
    case FsKind::kMinix:
      return "MINIX";
    case FsKind::kSunOs:
      return "SunOS";
  }
  return "?";
}

void FsUnderTest::ResetMeasurement() {
  clock->Reset();
  disk->ResetStats();
  if (lld != nullptr) {
    lld->ResetCounters();
  }
  if (fs != nullptr) {
    fs->ResetStats();
  }
}

StatusOr<MinixFsckReport> FsUnderTest::Fsck(bool scrub) {
  MinixFsckOptions options;
  options.scrub = scrub;
  return fs->Fsck(options);
}

StatusOr<FsStack> MakeFsStack(BlockDevice* device, FsKind kind, const SetupParams& params) {
  FsStack s;

  MinixOptions options;
  options.block_size = params.minix_block_size;
  options.num_inodes = params.num_inodes;
  options.cache_bytes = params.cache_bytes;
  options.compress_file_data = params.compress_file_data;
  options.readahead_blocks = params.readahead_blocks;
  options.async_reads = params.async_reads;
  options.ld_readahead = params.ld_readahead;
  options.tenant = params.tenant;

  switch (kind) {
    case FsKind::kMinixLld:
    case FsKind::kMinixLldSingleList:
    case FsKind::kMinixLldSmallInodes: {
      LldOptions lld_options = params.lld;
      lld_options.block_size = params.minix_block_size;
      lld_options.tenant = params.tenant;
      lld_options.checkpoint_interval_segments =
          EnvCheckpointInterval(lld_options.checkpoint_interval_segments);
      lld_options.cleaning_policy = EnvCleaningPolicy(lld_options.cleaning_policy);
      const bool maint = EnvMaintenance(params.maintenance);
      MaintenanceOptions maint_options;
      if (maint) {
        maint_options = EnvMaintenanceOptions();
        // One past the session tenant: distinct from every foreground id so
        // the device's idle detector can classify maintenance traffic.
        maint_options.tenant = params.tenant + 1;
        lld_options.rebuild_tenant = maint_options.tenant;
        // Cleaning is maintenance too: its I/O bills to the background
        // budget instead of whichever session tripped the free-pool check.
        lld_options.cleaner_tenant = maint_options.tenant;
        lld_options.defer_checkpoint_frames = maint_options.checkpoint;
      }
      ASSIGN_OR_RETURN(s.lld, LogStructuredDisk::Format(device, lld_options));
      const bool list_per_file = kind != FsKind::kMinixLldSingleList;
      const bool small_inodes = kind == FsKind::kMinixLldSmallInodes;
      ASSIGN_OR_RETURN(s.fs,
                       MinixFs::FormatOnLd(s.lld.get(), options, list_per_file, small_inodes));
      if (maint) {
        s.maintenance = std::make_unique<MaintenanceScheduler>(s.lld.get(), maint_options);
      }
      break;
    }
    case FsKind::kMinix: {
      ASSIGN_OR_RETURN(s.fs, MinixFs::FormatClassic(device, options));
      break;
    }
    case FsKind::kSunOs: {
      FfsParams ffs;
      ffs.num_inodes = params.num_inodes;
      ffs.cache_bytes = params.cache_bytes;
      ffs.tenant = params.tenant;
      ASSIGN_OR_RETURN(s.fs, FormatFfs(device, ffs));
      break;
    }
  }
  return s;
}

StatusOr<FsUnderTest> MakeFsUnderTest(FsKind kind, const SetupParams& params) {
  FsUnderTest t;
  t.name = FsKindName(kind);
  t.clock = std::make_unique<SimClock>();
  DeviceOptions device = params.device;
  device.geometry = DiskGeometry::HpC3010Partition(params.partition_bytes);
  t.disk = MakeDevice(device, t.clock.get());

  ASSIGN_OR_RETURN(FsStack stack, MakeFsStack(t.disk.get(), kind, params));
  t.lld = std::move(stack.lld);
  t.fs = std::move(stack.fs);
  t.maintenance = std::move(stack.maintenance);
  t.ResetMeasurement();
  return t;
}

}  // namespace ld

#include "src/harness/setup.h"

namespace ld {

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kMinixLld:
      return "MINIX LLD";
    case FsKind::kMinixLldSingleList:
      return "MINIX LLD (single list)";
    case FsKind::kMinixLldSmallInodes:
      return "MINIX LLD (small i-nodes)";
    case FsKind::kMinix:
      return "MINIX";
    case FsKind::kSunOs:
      return "SunOS";
  }
  return "?";
}

void FsUnderTest::ResetMeasurement() {
  clock->Reset();
  disk->ResetStats();
  if (lld != nullptr) {
    lld->ResetCounters();
  }
}

StatusOr<MinixFsckReport> FsUnderTest::Fsck(bool scrub) {
  MinixFsckOptions options;
  options.scrub = scrub;
  return fs->Fsck(options);
}

StatusOr<FsUnderTest> MakeFsUnderTest(FsKind kind, const SetupParams& params) {
  FsUnderTest t;
  t.name = FsKindName(kind);
  t.clock = std::make_unique<SimClock>();
  DeviceOptions device = params.device;
  device.geometry = DiskGeometry::HpC3010Partition(params.partition_bytes);
  t.disk = MakeDevice(device, t.clock.get());

  MinixOptions options;
  options.block_size = params.minix_block_size;
  options.num_inodes = params.num_inodes;
  options.cache_bytes = params.cache_bytes;
  options.compress_file_data = params.compress_file_data;
  options.readahead_blocks = params.readahead_blocks;
  options.async_reads = params.async_reads;
  options.ld_readahead = params.ld_readahead;

  switch (kind) {
    case FsKind::kMinixLld:
    case FsKind::kMinixLldSingleList:
    case FsKind::kMinixLldSmallInodes: {
      LldOptions lld_options = params.lld;
      lld_options.block_size = params.minix_block_size;
      ASSIGN_OR_RETURN(t.lld, LogStructuredDisk::Format(t.disk.get(), lld_options));
      const bool list_per_file = kind != FsKind::kMinixLldSingleList;
      const bool small_inodes = kind == FsKind::kMinixLldSmallInodes;
      ASSIGN_OR_RETURN(t.fs,
                       MinixFs::FormatOnLd(t.lld.get(), options, list_per_file, small_inodes));
      break;
    }
    case FsKind::kMinix: {
      ASSIGN_OR_RETURN(t.fs, MinixFs::FormatClassic(t.disk.get(), options));
      break;
    }
    case FsKind::kSunOs: {
      FfsParams ffs;
      ffs.num_inodes = params.num_inodes;
      ffs.cache_bytes = params.cache_bytes;
      ASSIGN_OR_RETURN(t.fs, FormatFfs(t.disk.get(), ffs));
      break;
    }
  }
  t.ResetMeasurement();
  return t;
}

}  // namespace ld

#include "src/harness/tenants.h"

namespace ld {

void MultiTenantRig::ResetMeasurement() {
  clock->Reset();
  disk->ResetStats();
  for (TenantSession& t : tenants) {
    if (t.lld != nullptr) {
      t.lld->ResetCounters();
    }
    if (t.fs != nullptr) {
      t.fs->ResetStats();
    }
  }
}

StatusOr<MultiTenantRig> MakeMultiTenantRig(const MultiTenantParams& params) {
  if (params.num_tenants == 0) {
    return InvalidArgumentError("rig needs at least one tenant");
  }
  MultiTenantRig rig;
  rig.clock = std::make_unique<SimClock>();

  const uint64_t total_bytes = params.bytes_per_tenant * params.num_tenants;
  DeviceOptions device = params.device;
  device.geometry = DiskGeometry::HpC3010Partition(total_bytes);
  device.qos = params.qos;
  device.qos.num_tenants = params.num_tenants;
  rig.disk = MakeDevice(device, rig.clock.get());

  const uint64_t sectors_per_tenant = params.bytes_per_tenant / rig.disk->sector_size();
  for (uint32_t i = 0; i < params.num_tenants; ++i) {
    TenantSession session;
    session.id = i;
    session.part = std::make_unique<PartitionDevice>(
        rig.disk.get(), i * sectors_per_tenant, sectors_per_tenant, /*tenant=*/i);
    SetupParams fs_params = params.fs;
    fs_params.tenant = i;
    ASSIGN_OR_RETURN(FsStack stack, MakeFsStack(session.part.get(), params.kind, fs_params));
    session.lld = std::move(stack.lld);
    session.fs = std::move(stack.fs);
    rig.tenants.push_back(std::move(session));
  }
  rig.ResetMeasurement();
  return rig;
}

void TenantScheduler::Add(std::string name, Step step) {
  Entry e;
  e.name = std::move(name);
  e.step = std::move(step);
  entries_.push_back(std::move(e));
}

Status TenantScheduler::RunAll() {
  size_t live = entries_.size();
  while (live > 0) {
    for (Entry& e : entries_) {
      if (e.done) {
        continue;
      }
      StatusOr<bool> more = e.step();
      if (!more.ok()) {
        return Status(more.status().code(),
                      "tenant '" + e.name + "': " + std::string(more.status().message()));
      }
      e.steps++;
      if (!more.value()) {
        e.done = true;
        live--;
      }
    }
  }
  return OkStatus();
}

}  // namespace ld

// Environment-driven parametrization shared by the bench mains and the test
// binaries: CI runs the same executables across a matrix of queue policies,
// channel counts, fault seeds, parity settings, read-path modes, and tenant
// counts. Each helper returns the caller's fallback when the variable is
// unset (or unparsable), so binaries keep deterministic defaults outside CI.
// Tests whose assertions depend on one specific setting construct their own
// options instead of consulting the environment.

#ifndef SRC_HARNESS_ENV_KNOBS_H_
#define SRC_HARNESS_ENV_KNOBS_H_

#include <cstdlib>
#include <string_view>

#include "src/disk/device_factory.h"
#include "src/disk/qos.h"
#include "src/lld/lld_maintenance.h"
#include "src/lld/lld_options.h"

namespace ld {

// LD_QUEUE_POLICY=fifo|cscan.
inline QueuePolicy EnvQueuePolicy(QueuePolicy fallback) {
  const char* v = std::getenv("LD_QUEUE_POLICY");
  if (v == nullptr) {
    return fallback;
  }
  return std::string_view(v) == "fifo" ? QueuePolicy::kFifo : QueuePolicy::kCScan;
}

// LD_CHANNELS=N: independent actuator/channel count for the shared device.
inline uint32_t EnvChannels(uint32_t fallback) {
  const char* v = std::getenv("LD_CHANNELS");
  if (v == nullptr) {
    return fallback;
  }
  const int n = std::atoi(v);
  return n > 0 ? static_cast<uint32_t>(n) : fallback;
}

// Base seed for fault-injection tests (LD_FAULT_SEED=N): the CI fault
// matrix varies it so the same binaries cover several fault schedules.
inline uint64_t EnvFaultSeed(uint64_t fallback) {
  const char* v = std::getenv("LD_FAULT_SEED");
  if (v == nullptr) {
    return fallback;
  }
  const long long n = std::atoll(v);
  return n >= 0 ? static_cast<uint64_t>(n) : fallback;
}

// Per-segment parity toggle (LD_SEGMENT_PARITY=0|1): the CI fault matrix
// runs the crash/corruption sweeps with the XOR parity block both absent
// and present. Tests whose expectations depend on one setting pin
// `LldOptions::segment_parity` explicitly instead.
inline bool EnvSegmentParity(bool fallback) {
  const char* v = std::getenv("LD_SEGMENT_PARITY");
  if (v == nullptr) {
    return fallback;
  }
  return std::string_view(v) != "0";
}

// Cross-channel stripe parity toggle (LD_STRIPE_PARITY=0|1): the CI stripe
// matrix runs the striping/recovery suites with RAID-5-style stripe sets
// both absent and present. Tests whose expectations depend on one setting
// pin `LldOptions::stripe_parity` explicitly instead.
inline bool EnvStripeParity(bool fallback) {
  const char* v = std::getenv("LD_STRIPE_PARITY");
  if (v == nullptr) {
    return fallback;
  }
  return std::string_view(v) != "0";
}

// LD_FAIL_CHANNEL=N: channel the bench fault experiments kill with
// FaultDisk::FailChannel (-1 / unset = the experiment's own default).
inline int EnvFailChannel(int fallback) {
  const char* v = std::getenv("LD_FAIL_CHANNEL");
  if (v == nullptr) {
    return fallback;
  }
  return std::atoi(v);
}

// Incremental checkpoint cadence in sealed segments (LD_CKPT_INTERVAL=N,
// 0 = checkpoints only at clean shutdown — the paper's behaviour). The CI
// recovery matrix varies it so the same binaries cover checkpoint-off and
// several cadences.
inline uint32_t EnvCheckpointInterval(uint32_t fallback) {
  const char* v = std::getenv("LD_CKPT_INTERVAL");
  if (v == nullptr) {
    return fallback;
  }
  const long n = std::atol(v);
  return n >= 0 ? static_cast<uint32_t>(n) : fallback;
}

// LD_CLEANER_POLICY=greedy|cost_benefit: the segment cleaner's victim-
// selection policy. Unset (or unrecognized) keeps the caller's default —
// kGreedy, the legacy byte-identical policy — so the CI byte-identity step
// can diff knob-unset against knob=greedy. Tests whose expectations depend
// on one policy pin `LldOptions::cleaning_policy` explicitly instead.
inline CleaningPolicy EnvCleaningPolicy(CleaningPolicy fallback) {
  const char* v = std::getenv("LD_CLEANER_POLICY");
  if (v == nullptr) {
    return fallback;
  }
  const std::string_view s(v);
  if (s == "greedy") {
    return CleaningPolicy::kGreedy;
  }
  if (s == "cost_benefit") {
    return CleaningPolicy::kCostBenefit;
  }
  return fallback;
}

// Per-file read-ahead toggle (LD_READAHEAD=0|1): the CI read-ahead matrix
// runs the read-path suites with prefetching both off and on. Tests whose
// assertions require one setting pin MinixOptions explicitly instead.
inline bool EnvReadAhead(bool fallback) {
  const char* v = std::getenv("LD_READAHEAD");
  if (v == nullptr) {
    return fallback;
  }
  return std::string_view(v) != "0";
}

// Generic flag: "0" turns it off; unset or anything else returns `fallback`
// unchanged or on, matching how LD_READAHEAD / LD_ASYNC_READS behave.
inline bool EnvFlag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  return std::string_view(v) != "0";
}

// LD_TENANTS=N: number of concurrent tenant sessions multiplexed over the
// shared device by the multi-tenant harness (1 = the classic single-FS
// setups, byte-identical to pre-tenant behaviour).
inline uint32_t EnvTenants(uint32_t fallback) {
  const char* v = std::getenv("LD_TENANTS");
  if (v == nullptr) {
    return fallback;
  }
  const int n = std::atoi(v);
  return n > 0 ? static_cast<uint32_t>(n) : fallback;
}

// LD_QOS=none|share|deadline: dispatch policy arbitrating channel time
// between tenants. Unrecognized values fall back.
inline QosPolicy EnvQosPolicy(QosPolicy fallback) {
  const char* v = std::getenv("LD_QOS");
  if (v == nullptr) {
    return fallback;
  }
  const std::string_view s(v);
  if (s == "none") {
    return QosPolicy::kNone;
  }
  if (s == "share") {
    return QosPolicy::kWeightedShare;
  }
  if (s == "deadline") {
    return QosPolicy::kDeadline;
  }
  return fallback;
}

// QoS config honoring LD_QOS / LD_TENANTS. `Active()` stays false (and the
// legacy dispatch path runs verbatim) unless both a policy and more than
// one tenant are configured.
inline QosConfig EnvQosConfig(const QosConfig& fallback = QosConfig{}) {
  QosConfig qos = fallback;
  qos.policy = EnvQosPolicy(qos.policy);
  qos.num_tenants = EnvTenants(qos.num_tenants);
  return qos;
}

// Idle-driven background maintenance toggle (LD_MAINT=0|1): when on, the
// LD-based setups attach a MaintenanceScheduler running scrub, deferred
// checkpoint frames, paced rebuild, and restripe-after-heal as a dedicated
// low-weight tenant during device idle time. Off (the fallback everywhere)
// keeps every maintenance operation a foreground call — the differential
// baseline the CI byte-identity step compares against.
inline bool EnvMaintenance(bool fallback) { return EnvFlag("LD_MAINT", fallback); }

// Maintenance pacing overrides: LD_MAINT_IDLE_MS (quiet window required
// before a slice), LD_MAINT_SCRUB_SEGMENTS / LD_MAINT_REBUILD_SEGMENTS
// (slice sizes). Unset keeps the scheduler defaults.
inline MaintenanceOptions EnvMaintenanceOptions(
    MaintenanceOptions options = MaintenanceOptions{}) {
  if (const char* v = std::getenv("LD_MAINT_IDLE_MS")) {
    const double ms = std::atof(v);
    if (ms >= 0.0) {
      options.idle_threshold_ms = ms;
    }
  }
  if (const char* v = std::getenv("LD_MAINT_SCRUB_SEGMENTS")) {
    const int n = std::atoi(v);
    if (n > 0) {
      options.scrub_segments_per_slice = static_cast<uint32_t>(n);
    }
  }
  if (const char* v = std::getenv("LD_MAINT_REBUILD_SEGMENTS")) {
    const int n = std::atoi(v);
    if (n > 0) {
      options.rebuild_segments_per_slice = static_cast<uint32_t>(n);
    }
  }
  return options;
}

// HP C3010 options honoring the environment overrides.
inline DeviceOptions EnvHpC3010(uint64_t partition_bytes) {
  DeviceOptions options = DeviceOptions::HpC3010(partition_bytes, EnvChannels(1));
  options.queue_policy = EnvQueuePolicy(options.queue_policy);
  options.qos = EnvQosConfig();
  return options;
}

}  // namespace ld

#endif  // SRC_HARNESS_ENV_KNOBS_H_

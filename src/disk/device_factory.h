// Backend-agnostic device construction. Everything outside src/disk/ builds
// devices through DeviceOptions + MakeDevice and talks to them as
// BlockDevice — benches and the harness select a backend (mechanical HP
// C3010, NVMe-style flash, zero-latency memory) by option, never by
// concrete type.

#ifndef SRC_DISK_DEVICE_FACTORY_H_
#define SRC_DISK_DEVICE_FACTORY_H_

#include <memory>

#include "src/disk/block_device.h"
#include "src/disk/geometry.h"
#include "src/disk/nvme_device.h"

namespace ld {

enum class DeviceBackend {
  kHpC3010,  // Mechanical SimDisk with the paper's HP C3010 geometry.
  kNvme,     // NvmeDevice: fixed latency + shared bandwidth, no mechanics.
  kMem,      // MemDisk: zero-latency, for structural tests.
};

struct DeviceOptions {
  DeviceBackend backend = DeviceBackend::kHpC3010;

  // Mechanical geometry (kHpC3010 only).
  DiskGeometry geometry = DiskGeometry::HpC3010();
  // Independent actuators/channels (kHpC3010 only; NVMe models its
  // parallelism through bandwidth sharing instead).
  uint32_t channels = 1;

  // NVMe timing parameters (kNvme only). nvme.capacity_bytes == 0 means
  // "match geometry.CapacityBytes()" so a bench can re-run the same
  // workload on both backends at equal capacity.
  NvmeConfig nvme;

  // Memory-disk shape (kMem only).
  uint64_t mem_num_sectors = 0;
  uint32_t mem_sector_size = 512;

  // Queue knobs applied to any backend that has a queue. queue_depth == 0
  // keeps the backend's default.
  QueuePolicy queue_policy = QueuePolicy::kCScan;
  uint32_t queue_depth = 0;

  // Between-tenants dispatch policy (see src/disk/qos.h). The default
  // (kNone / one tenant) leaves the legacy schedule untouched.
  QosConfig qos;

  // --- Convenience constructors -------------------------------------------

  // The paper's 400-MB partition of the HP C3010 (or any size), with
  // `channels` independent actuators.
  static DeviceOptions HpC3010(uint64_t partition_bytes, uint32_t channels = 1);

  // An NVMe device of `capacity_bytes`.
  static DeviceOptions Nvme(uint64_t capacity_bytes);

  // A zero-latency memory disk of `num_sectors` x `sector_size`.
  static DeviceOptions Mem(uint64_t num_sectors, uint32_t sector_size = 512);
};

// Builds the device described by `options`. The clock must outlive the
// device.
std::unique_ptr<BlockDevice> MakeDevice(const DeviceOptions& options, SimClock* clock);

}  // namespace ld

#endif  // SRC_DISK_DEVICE_FACTORY_H_

#include "src/disk/qos.h"

#include <cmath>

namespace ld {

namespace {

// Bucket i covers latencies in [2^(i/2), 2^((i+1)/2)) microseconds.
size_t BucketOf(double ms) {
  const double us = ms * 1000.0;
  if (us < 1.0) {
    return 0;
  }
  const double idx = 2.0 * std::log2(us);
  if (idx <= 0.0) {
    return 0;
  }
  if (idx >= 63.0) {
    return 63;
  }
  return static_cast<size_t>(idx);
}

// Geometric midpoint of bucket i, back in milliseconds.
double Representative(size_t i) {
  return std::exp2((static_cast<double>(i) + 0.5) / 2.0) / 1000.0;
}

}  // namespace

void LatencyHistogram::Add(double ms) {
  if (ms < 0.0) {
    ms = 0.0;
  }
  buckets_[BucketOf(ms)]++;
  count_++;
  total_ms_ += ms;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the target sample, 1-based, ceil so Quantile(1.0) is the max.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return Representative(i);
    }
  }
  return Representative(buckets_.size() - 1);
}

}  // namespace ld

#include "src/disk/geometry.h"

#include <cmath>

namespace ld {

double DiskGeometry::SeekTimeMs(uint32_t distance) const {
  if (distance == 0) {
    return 0.0;
  }
  return seek_base_ms + seek_per_cyl_ms * static_cast<double>(distance) +
         seek_sqrt_ms * std::sqrt(static_cast<double>(distance));
}

DiskGeometry DiskGeometry::HpC3010() { return DiskGeometry{}; }

DiskGeometry DiskGeometry::HpC3010Partition(uint64_t bytes) {
  DiskGeometry geometry;
  const uint64_t bytes_per_cylinder =
      static_cast<uint64_t>(geometry.sector_size) * geometry.sectors_per_track * geometry.heads;
  uint64_t cylinders = (bytes + bytes_per_cylinder - 1) / bytes_per_cylinder;
  if (cylinders < 8) {
    cylinders = 8;
  }
  geometry.cylinders = static_cast<uint32_t>(cylinders);
  return geometry;
}

}  // namespace ld

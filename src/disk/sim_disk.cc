#include "src/disk/sim_disk.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ld {

SimDisk::SimDisk(const DiskGeometry& geometry, SimClock* clock)
    : geometry_(geometry), clock_(clock) {
  const uint64_t total_bytes = geometry_.CapacityBytes();
  chunks_.resize((total_bytes + kChunkBytes - 1) / kChunkBytes);
}

uint32_t SimDisk::AngularSlot(uint64_t sector) const {
  const uint64_t track = sector / geometry_.sectors_per_track;
  const uint64_t within = sector % geometry_.sectors_per_track;
  const uint64_t cylinder = track / geometry_.heads;
  return static_cast<uint32_t>(
      (within + track * geometry_.track_skew + cylinder * geometry_.cylinder_skew) %
      geometry_.sectors_per_track);
}

Status SimDisk::ValidateRequest(uint64_t sector, size_t bytes) const {
  if (bytes == 0 || bytes % geometry_.sector_size != 0) {
    return InvalidArgumentError("request size not sector-aligned");
  }
  const uint64_t count = bytes / geometry_.sector_size;
  if (sector + count > num_sectors()) {
    return InvalidArgumentError("disk request beyond device end");
  }
  return OkStatus();
}

double SimDisk::ServiceAt(double start_seconds, uint64_t sector, uint64_t count, bool is_read) {
  // Controller read-ahead buffer: a read that starts inside (or exactly at
  // the end of) the recently streamed window is served from the buffer;
  // only sectors beyond the window's end cost media-transfer time. This is
  // how real controllers make sequential reads cheap even when requests
  // overlap at sector granularity (sub-sector-aligned blocks re-read their
  // boundary sector).
  if (is_read && geometry_.read_ahead_buffer && sector >= read_window_start_ &&
      sector <= read_window_end_) {
    const uint64_t end = sector + count;
    const uint64_t new_sectors = end > read_window_end_ ? end - read_window_end_ : 0;
    const double xfer_ms = static_cast<double>(new_sectors) * geometry_.SectorTimeMs();
    const double service_ms = geometry_.controller_overhead_ms + xfer_ms;
    stats_.transfer_ms += xfer_ms;
    stats_.busy_ms += service_ms;
    if (end > read_window_end_) {
      read_window_end_ = end;
    }
    // Bound the modeled buffer to 256 KB of trailing data.
    const uint64_t kWindowSectors = 512;
    if (read_window_end_ - read_window_start_ > kWindowSectors) {
      read_window_start_ = read_window_end_ - kWindowSectors;
    }
    const uint32_t sectors_per_cyl = geometry_.sectors_per_track * geometry_.heads;
    arm_cylinder_ = static_cast<uint32_t>((read_window_end_ - 1) / sectors_per_cyl);
    return start_seconds + service_ms / 1000.0;
  }
  if (is_read) {
    read_window_start_ = sector;
    read_window_end_ = sector + count;
  } else {
    read_window_start_ = UINT64_MAX;  // Writes invalidate the read buffer.
    read_window_end_ = UINT64_MAX;
  }

  const double period_ms = geometry_.RotationPeriodMs();
  const double sector_ms = geometry_.SectorTimeMs();
  const uint32_t spt = geometry_.sectors_per_track;

  // Times below are in milliseconds relative to an arbitrary epoch; the
  // rotational position is time modulo the rotation period.
  double time_ms = start_seconds * 1000.0;
  const double start_ms = time_ms;

  time_ms += geometry_.controller_overhead_ms;

  // Initial seek to the first cylinder of the transfer.
  const uint32_t sectors_per_cyl = spt * geometry_.heads;
  uint32_t target_cyl = static_cast<uint32_t>(sector / sectors_per_cyl);
  const uint32_t distance = target_cyl > arm_cylinder_ ? target_cyl - arm_cylinder_
                                                       : arm_cylinder_ - target_cyl;
  if (distance > 0) {
    const double seek_ms = geometry_.SeekTimeMs(distance);
    time_ms += seek_ms;
    stats_.seeks++;
    stats_.seek_ms += seek_ms;
    arm_cylinder_ = target_cyl;
  }

  // Transfer track by track, waiting for the head to reach each chunk's
  // first sector. Track skew makes sequential multi-track transfers cheap.
  uint64_t pos = sector;
  const uint64_t end = sector + count;
  uint64_t prev_track = UINT64_MAX;
  while (pos < end) {
    const uint64_t track = pos / spt;
    const uint64_t track_end = (track + 1) * spt;
    const uint64_t chunk = (end < track_end ? end : track_end) - pos;

    if (prev_track != UINT64_MAX && track != prev_track) {
      const uint32_t cyl = static_cast<uint32_t>(track / geometry_.heads);
      if (cyl != arm_cylinder_) {
        const uint32_t d = cyl > arm_cylinder_ ? cyl - arm_cylinder_ : arm_cylinder_ - cyl;
        const double seek_ms = geometry_.SeekTimeMs(d);
        time_ms += seek_ms;
        stats_.seek_ms += seek_ms;
        arm_cylinder_ = cyl;
      } else {
        time_ms += geometry_.head_switch_ms;
      }
    }
    prev_track = track;

    // Rotational latency until the chunk's first sector comes under the head.
    const double angle_now = std::fmod(time_ms, period_ms) / sector_ms;  // in sector units
    const double target_angle = static_cast<double>(AngularSlot(pos));
    double wait_sectors = target_angle - angle_now;
    if (wait_sectors < 0.0) {
      wait_sectors += static_cast<double>(spt);
    }
    const double rot_ms = wait_sectors * sector_ms;
    time_ms += rot_ms;
    stats_.rotation_ms += rot_ms;

    const double xfer_ms = static_cast<double>(chunk) * sector_ms;
    time_ms += xfer_ms;
    stats_.transfer_ms += xfer_ms;
    pos += chunk;
  }

  stats_.busy_ms += time_ms - start_ms;
  return time_ms / 1000.0;
}

void SimDisk::ScheduleAll() {
  if (pending_.empty()) {
    return;
  }
  std::vector<PendingIo> batch(pending_.begin(), pending_.end());
  pending_.clear();

  if (queue_policy_ == QueuePolicy::kCScan && batch.size() > 1) {
    // Circular elevator: sweep upward from the arm's current position, wrap
    // to the lowest request, and continue upward.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const PendingIo& a, const PendingIo& b) { return a.sector < b.sector; });
    const uint64_t head_sector = static_cast<uint64_t>(arm_cylinder_) *
                                 geometry_.sectors_per_track * geometry_.heads;
    auto pivot = std::find_if(batch.begin(), batch.end(), [head_sector](const PendingIo& r) {
      return r.sector >= head_sector;
    });
    std::rotate(batch.begin(), pivot, batch.end());
  }

  size_t i = 0;
  while (i < batch.size()) {
    // Coalesce a run of physically adjacent same-direction requests into one
    // media transfer.
    size_t j = i + 1;
    uint64_t run_end = batch[i].sector + batch[i].count;
    double latest_submit = batch[i].submit_seconds;
    while (j < batch.size() && batch[j].is_read == batch[i].is_read &&
           batch[j].sector == run_end) {
      run_end += batch[j].count;
      latest_submit = std::max(latest_submit, batch[j].submit_seconds);
      ++j;
    }

    const double start = std::max(busy_until_seconds_, latest_submit);
    const double completion =
        ServiceAt(start, batch[i].sector, run_end - batch[i].sector, batch[i].is_read);
    busy_until_seconds_ = completion;

    for (size_t k = i; k < j; ++k) {
      completed_[batch[k].tag] = {batch[k].is_read, completion};
      stats_.queue_wait_ms += (start - batch[k].submit_seconds) * 1000.0;
      if (batch[k].is_read) {
        stats_.read_ops++;
        stats_.sectors_read += batch[k].count;
      } else {
        stats_.write_ops++;
        stats_.sectors_written += batch[k].count;
      }
    }
    stats_.merged_requests += (j - i) - 1;
    i = j;
  }
}

StatusOr<IoTag> SimDisk::Enqueue(uint64_t sector, uint64_t count, bool is_read) {
  const IoTag tag = NextTag();
  pending_.push_back({tag, sector, count, is_read, clock_->Now()});
  stats_.queued_requests++;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth, pending_.size());
  if (pending_.size() >= queue_depth_) {
    ScheduleAll();
  }
  return tag;
}

uint8_t* SimDisk::ChunkFor(uint64_t byte_offset, bool allocate) {
  const uint64_t index = byte_offset / kChunkBytes;
  if (chunks_[index] == nullptr) {
    if (!allocate) {
      return nullptr;
    }
    chunks_[index] = std::make_unique<uint8_t[]>(kChunkBytes);
    std::memset(chunks_[index].get(), 0, kChunkBytes);
  }
  return chunks_[index].get();
}

void SimDisk::CopyOut(uint64_t sector, std::span<uint8_t> out) {
  uint64_t byte = sector * sector_size();
  size_t copied = 0;
  while (copied < out.size()) {
    const uint64_t within = byte % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, out.size() - copied));
    uint8_t* chunk = ChunkFor(byte, /*allocate=*/false);
    if (chunk != nullptr) {
      std::memcpy(out.data() + copied, chunk + within, n);
    } else {
      std::memset(out.data() + copied, 0, n);  // Never-written area reads as zeros.
    }
    copied += n;
    byte += n;
  }
}

void SimDisk::CopyIn(uint64_t sector, std::span<const uint8_t> data) {
  uint64_t byte = sector * sector_size();
  size_t copied = 0;
  while (copied < data.size()) {
    const uint64_t within = byte % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, data.size() - copied));
    uint8_t* chunk = ChunkFor(byte, /*allocate=*/true);
    std::memcpy(chunk + within, data.data() + copied, n);
    copied += n;
    byte += n;
  }
}

StatusOr<IoTag> SimDisk::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(ValidateRequest(sector, out.size()));
  // Data effects are applied at submit time; only timing is deferred. Reads
  // therefore observe every previously submitted write.
  CopyOut(sector, out);
  return Enqueue(sector, out.size() / sector_size(), /*is_read=*/true);
}

StatusOr<IoTag> SimDisk::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(ValidateRequest(sector, data.size()));
  CopyIn(sector, data);
  return Enqueue(sector, data.size() / sector_size(), /*is_read=*/false);
}

Status SimDisk::WaitFor(IoTag tag) {
  ScheduleAll();
  auto it = completed_.find(tag);
  if (it == completed_.end()) {
    return OkStatus();  // Already retired (e.g. by Drain).
  }
  clock_->AdvanceTo(it->second.completion_seconds);
  completed_.erase(it);
  return OkStatus();
}

std::vector<IoCompletion> SimDisk::Poll() {
  ScheduleAll();
  std::vector<IoCompletion> done;
  const double now = clock_->Now();
  for (auto it = completed_.begin(); it != completed_.end();) {
    if (it->second.completion_seconds <= now) {
      done.push_back({it->first, it->second.is_read, it->second.completion_seconds});
      it = completed_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(done.begin(), done.end(), [](const IoCompletion& a, const IoCompletion& b) {
    return a.completion_seconds < b.completion_seconds;
  });
  return done;
}

Status SimDisk::Drain() {
  ScheduleAll();
  double last = clock_->Now();
  for (const auto& [tag, done] : completed_) {
    last = std::max(last, done.completion_seconds);
  }
  clock_->AdvanceTo(last);
  completed_.clear();
  return OkStatus();
}

double SimDisk::ScheduledCompletion(IoTag tag) const {
  auto it = completed_.find(tag);
  return it == completed_.end() ? -1.0 : it->second.completion_seconds;
}

Status SimDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  if (out.size() % sector_size() != 0) {
    return InvalidArgumentError("read size not sector-aligned");
  }
  ASSIGN_OR_RETURN(IoTag tag, SubmitRead(sector, out));
  return WaitFor(tag);
}

Status SimDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  if (data.size() % sector_size() != 0) {
    return InvalidArgumentError("write size not sector-aligned");
  }
  ASSIGN_OR_RETURN(IoTag tag, SubmitWrite(sector, data));
  return WaitFor(tag);
}

}  // namespace ld

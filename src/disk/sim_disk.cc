#include "src/disk/sim_disk.h"

#include <algorithm>
#include <cmath>

namespace ld {

SimDisk::SimDisk(const DiskGeometry& geometry, SimClock* clock, uint32_t num_channels)
    : geometry_(geometry), clock_(clock), storage_(geometry.CapacityBytes()) {
  const uint32_t nch = std::clamp<uint32_t>(num_channels, 1, geometry_.cylinders);
  cylinders_per_channel_ = geometry_.cylinders / nch;
  channels_.resize(nch);
  for (uint32_t ch = 0; ch < nch; ++ch) {
    // Each arm parks at the first cylinder of its band.
    channels_[ch].arm_cylinder = ch * cylinders_per_channel_;
  }
}

void SimDisk::ResetStats() {
  stats_ = DiskStats{};
  for (Channel& ch : channels_) {
    ch.busy_until_seconds = 0.0;
    // Virtual times are only meaningful relative to each other within a
    // measurement run; a fresh run starts every tenant level.
    ch.vtime.clear();
  }
}

uint32_t SimDisk::ChannelOf(uint64_t sector) const {
  const uint32_t sectors_per_cyl = geometry_.sectors_per_track * geometry_.heads;
  const uint32_t cyl = static_cast<uint32_t>(sector / sectors_per_cyl);
  const uint32_t ch = cyl / cylinders_per_channel_;
  return std::min<uint32_t>(ch, static_cast<uint32_t>(channels_.size()) - 1);
}

uint32_t SimDisk::AngularSlot(uint64_t sector) const {
  const uint64_t track = sector / geometry_.sectors_per_track;
  const uint64_t within = sector % geometry_.sectors_per_track;
  const uint64_t cylinder = track / geometry_.heads;
  return static_cast<uint32_t>(
      (within + track * geometry_.track_skew + cylinder * geometry_.cylinder_skew) %
      geometry_.sectors_per_track);
}

Status SimDisk::ValidateRequest(uint64_t sector, size_t bytes) const {
  if (bytes == 0 || bytes % geometry_.sector_size != 0) {
    return InvalidArgumentError("request size not sector-aligned");
  }
  const uint64_t count = bytes / geometry_.sector_size;
  if (sector + count > num_sectors()) {
    return InvalidArgumentError("disk request beyond device end");
  }
  return OkStatus();
}

double SimDisk::ServiceAt(uint32_t ch_index, double start_seconds, uint64_t sector,
                          uint64_t count, bool is_read) {
  Channel& ch = channels_[ch_index];
  ChannelStats& cstats = stats_.MutableChannel(ch_index);

  // Controller read-ahead buffer: a read that starts inside (or exactly at
  // the end of) the recently streamed window is served from the buffer;
  // only sectors beyond the window's end cost media-transfer time. This is
  // how real controllers make sequential reads cheap even when requests
  // overlap at sector granularity (sub-sector-aligned blocks re-read their
  // boundary sector).
  if (is_read && geometry_.read_ahead_buffer && sector >= ch.read_window_start &&
      sector <= ch.read_window_end) {
    const uint64_t end = sector + count;
    const uint64_t new_sectors = end > ch.read_window_end ? end - ch.read_window_end : 0;
    const double xfer_ms = static_cast<double>(new_sectors) * geometry_.SectorTimeMs();
    const double service_ms = geometry_.controller_overhead_ms + xfer_ms;
    stats_.transfer_ms += xfer_ms;
    stats_.busy_ms += service_ms;
    cstats.busy_ms += service_ms;
    if (end > ch.read_window_end) {
      ch.read_window_end = end;
    }
    // Bound the modeled buffer to 256 KB of trailing data.
    const uint64_t kWindowSectors = 512;
    if (ch.read_window_end - ch.read_window_start > kWindowSectors) {
      ch.read_window_start = ch.read_window_end - kWindowSectors;
    }
    const uint32_t sectors_per_cyl = geometry_.sectors_per_track * geometry_.heads;
    ch.arm_cylinder = static_cast<uint32_t>((ch.read_window_end - 1) / sectors_per_cyl);
    return start_seconds + service_ms / 1000.0;
  }
  if (is_read) {
    ch.read_window_start = sector;
    ch.read_window_end = sector + count;
  } else {
    ch.read_window_start = UINT64_MAX;  // Writes invalidate the read buffer.
    ch.read_window_end = UINT64_MAX;
  }

  const double period_ms = geometry_.RotationPeriodMs();
  const double sector_ms = geometry_.SectorTimeMs();
  const uint32_t spt = geometry_.sectors_per_track;

  // Times below are in milliseconds relative to an arbitrary epoch; the
  // rotational position is time modulo the rotation period.
  double time_ms = start_seconds * 1000.0;
  const double start_ms = time_ms;

  time_ms += geometry_.controller_overhead_ms;

  // Initial seek to the first cylinder of the transfer.
  const uint32_t sectors_per_cyl = spt * geometry_.heads;
  uint32_t target_cyl = static_cast<uint32_t>(sector / sectors_per_cyl);
  const uint32_t distance = target_cyl > ch.arm_cylinder ? target_cyl - ch.arm_cylinder
                                                         : ch.arm_cylinder - target_cyl;
  if (distance > 0) {
    const double seek_ms = geometry_.SeekTimeMs(distance);
    time_ms += seek_ms;
    stats_.seeks++;
    stats_.seek_ms += seek_ms;
    ch.arm_cylinder = target_cyl;
  }

  // Transfer track by track, waiting for the head to reach each chunk's
  // first sector. Track skew makes sequential multi-track transfers cheap.
  uint64_t pos = sector;
  const uint64_t end = sector + count;
  uint64_t prev_track = UINT64_MAX;
  while (pos < end) {
    const uint64_t track = pos / spt;
    const uint64_t track_end = (track + 1) * spt;
    const uint64_t chunk = (end < track_end ? end : track_end) - pos;

    if (prev_track != UINT64_MAX && track != prev_track) {
      const uint32_t cyl = static_cast<uint32_t>(track / geometry_.heads);
      if (cyl != ch.arm_cylinder) {
        const uint32_t d = cyl > ch.arm_cylinder ? cyl - ch.arm_cylinder : ch.arm_cylinder - cyl;
        const double seek_ms = geometry_.SeekTimeMs(d);
        time_ms += seek_ms;
        stats_.seek_ms += seek_ms;
        ch.arm_cylinder = cyl;
      } else {
        time_ms += geometry_.head_switch_ms;
      }
    }
    prev_track = track;

    // Rotational latency until the chunk's first sector comes under the head.
    const double angle_now = std::fmod(time_ms, period_ms) / sector_ms;  // in sector units
    const double target_angle = static_cast<double>(AngularSlot(pos));
    double wait_sectors = target_angle - angle_now;
    if (wait_sectors < 0.0) {
      wait_sectors += static_cast<double>(spt);
    }
    const double rot_ms = wait_sectors * sector_ms;
    time_ms += rot_ms;
    stats_.rotation_ms += rot_ms;

    const double xfer_ms = static_cast<double>(chunk) * sector_ms;
    time_ms += xfer_ms;
    stats_.transfer_ms += xfer_ms;
    pos += chunk;
  }

  stats_.busy_ms += time_ms - start_ms;
  cstats.busy_ms += time_ms - start_ms;
  return time_ms / 1000.0;
}

void SimDisk::ScheduleChannel(uint32_t ch_index) {
  if (qos_.Active()) {
    ScheduleChannelQos(ch_index);
    return;
  }
  Channel& ch = channels_[ch_index];
  if (ch.pending.empty()) {
    return;
  }
  std::vector<PendingIo> batch(ch.pending.begin(), ch.pending.end());
  ch.pending.clear();

  if (queue_policy_ == QueuePolicy::kCScan && batch.size() > 1) {
    // Circular elevator: sweep upward from the arm's current position, wrap
    // to the lowest request, and continue upward.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const PendingIo& a, const PendingIo& b) { return a.sector < b.sector; });
    const uint64_t head_sector = static_cast<uint64_t>(ch.arm_cylinder) *
                                 geometry_.sectors_per_track * geometry_.heads;
    auto pivot = std::find_if(batch.begin(), batch.end(), [head_sector](const PendingIo& r) {
      return r.sector >= head_sector;
    });
    std::rotate(batch.begin(), pivot, batch.end());
  }

  ChannelStats& cstats = stats_.MutableChannel(ch_index);
  size_t i = 0;
  while (i < batch.size()) {
    // Coalesce a run of physically adjacent same-direction requests into one
    // media transfer.
    size_t j = i + 1;
    uint64_t run_end = batch[i].sector + batch[i].count;
    double latest_submit = batch[i].submit_seconds;
    while (j < batch.size() && batch[j].is_read == batch[i].is_read &&
           batch[j].sector == run_end) {
      run_end += batch[j].count;
      latest_submit = std::max(latest_submit, batch[j].submit_seconds);
      ++j;
    }

    const double start = std::max(ch.busy_until_seconds, latest_submit);
    const double completion =
        ServiceAt(ch_index, start, batch[i].sector, run_end - batch[i].sector, batch[i].is_read);
    ch.busy_until_seconds = completion;

    for (size_t k = i; k < j; ++k) {
      completed_[batch[k].tag] = {batch[k].is_read, completion};
      const double wait_ms = (start - batch[k].submit_seconds) * 1000.0;
      stats_.queue_wait_ms += wait_ms;
      cstats.queue_wait_ms += wait_ms;
      // Tenant accounting rides along even without QoS dispatch so the
      // FIFO/C-SCAN legs of a multi-tenant comparison report per-tenant
      // latency too. Stats only — the schedule above is unchanged.
      TenantStats& tstats = stats_.MutableTenant(batch[k].tenant);
      tstats.queue_wait_ms += wait_ms;
      if (wait_ms > qos_.starvation_threshold_ms) {
        tstats.starved_requests++;
      }
      const double latency_ms = (completion - batch[k].submit_seconds) * 1000.0;
      if (batch[k].is_read) {
        stats_.read_ops++;
        stats_.sectors_read += batch[k].count;
        cstats.read_ops++;
        cstats.sectors_read += batch[k].count;
        tstats.read_ops++;
        tstats.sectors_read += batch[k].count;
        tstats.read_latency.Add(latency_ms);
      } else {
        stats_.write_ops++;
        stats_.sectors_written += batch[k].count;
        stats_.total_bytes_written +=
            static_cast<uint64_t>(batch[k].count) * geometry_.sector_size;
        cstats.write_ops++;
        cstats.sectors_written += batch[k].count;
        tstats.write_ops++;
        tstats.sectors_written += batch[k].count;
        tstats.write_latency.Add(latency_ms);
      }
    }
    // The merged run's media time is charged to the tenant of its first
    // request (one transfer, one owner).
    stats_.MutableTenant(batch[i].tenant).busy_ms += (completion - start) * 1000.0;
    stats_.merged_requests += (j - i) - 1;
    i = j;
  }
}

void SimDisk::ScheduleChannelQos(uint32_t ch_index) {
  Channel& ch = channels_[ch_index];
  ChannelStats& cstats = stats_.MutableChannel(ch_index);
  const double slice_seconds = qos_.slice_ms / 1000.0;
  const uint64_t chunk_sectors = std::max<uint64_t>(
      1, static_cast<uint64_t>(qos_.chunk_kb) * 1024 / geometry_.sector_size);

  // Dispatch one chunk at a time, never committing the arm more than
  // slice_ms past the current clock: the next ScheduleAll (after the caller
  // advances the clock) re-picks a winner, which is where a victim's demand
  // read overtakes the remaining chunks of an aggressor's segment write.
  while (!ch.pending.empty() && ch.busy_until_seconds <= clock_->Now() + slice_seconds) {
    size_t pick = 0;
    if (qos_.policy == QosPolicy::kWeightedShare) {
      // Per-tenant head = its earliest pending request (deque keeps
      // submission order); winner = lowest virtual time, ties to the lower
      // tenant id.
      if (ch.vtime.size() < qos_.num_tenants) {
        ch.vtime.resize(qos_.num_tenants, 0.0);
      }
      TenantId best_tenant = 0;
      double best_vt = 0.0;
      bool found = false;
      std::vector<size_t> head(ch.vtime.size(), SIZE_MAX);
      for (size_t i = 0; i < ch.pending.size(); ++i) {
        const TenantId t = ch.pending[i].tenant;
        if (t >= ch.vtime.size()) {
          ch.vtime.resize(t + 1, 0.0);
          head.resize(t + 1, SIZE_MAX);
        }
        if (head[t] == SIZE_MAX) {
          head[t] = i;
          if (!found || ch.vtime[t] < best_vt) {
            found = true;
            best_tenant = t;
            best_vt = ch.vtime[t];
          }
        }
      }
      pick = head[best_tenant];
    } else {
      // kDeadline: earliest deadline first; reads carry tight deadlines so
      // they pass queued segment flushes.
      double best_deadline = 0.0;
      for (size_t i = 0; i < ch.pending.size(); ++i) {
        const PendingIo& req = ch.pending[i];
        const double deadline =
            req.submit_seconds +
            (req.is_read ? qos_.read_deadline_ms : qos_.write_deadline_ms) / 1000.0;
        if (i == 0 || deadline < best_deadline) {
          best_deadline = deadline;
          pick = i;
        }
      }
    }

    PendingIo& req = ch.pending[pick];
    const uint64_t n = std::min(req.count, chunk_sectors);
    const double start = std::max(ch.busy_until_seconds, req.submit_seconds);
    if (req.first_wait_ms < 0.0) {
      req.first_wait_ms = (start - req.submit_seconds) * 1000.0;
      stats_.queue_wait_ms += req.first_wait_ms;
      cstats.queue_wait_ms += req.first_wait_ms;
    }
    const double completion = ServiceAt(ch_index, start, req.sector, n, req.is_read);
    ch.busy_until_seconds = completion;
    stats_.MutableTenant(req.tenant).busy_ms += (completion - start) * 1000.0;
    if (qos_.policy == QosPolicy::kWeightedShare) {
      ch.vtime[req.tenant] += static_cast<double>(n) / qos_.WeightOf(req.tenant);
    }
    req.sector += n;
    req.count -= n;
    if (req.count == 0) {
      TenantStats& tstats = stats_.MutableTenant(req.tenant);
      tstats.queue_wait_ms += req.first_wait_ms;
      if (req.first_wait_ms > qos_.starvation_threshold_ms) {
        tstats.starved_requests++;
      }
      const double latency_ms = (completion - req.submit_seconds) * 1000.0;
      if (req.is_read) {
        stats_.read_ops++;
        stats_.sectors_read += req.total_count;
        cstats.read_ops++;
        cstats.sectors_read += req.total_count;
        tstats.read_ops++;
        tstats.sectors_read += req.total_count;
        tstats.read_latency.Add(latency_ms);
      } else {
        stats_.write_ops++;
        stats_.sectors_written += req.total_count;
        stats_.total_bytes_written +=
            static_cast<uint64_t>(req.total_count) * geometry_.sector_size;
        cstats.write_ops++;
        cstats.sectors_written += req.total_count;
        tstats.write_ops++;
        tstats.sectors_written += req.total_count;
        tstats.write_latency.Add(latency_ms);
      }
      completed_[req.tag] = {req.is_read, completion};
      ch.pending.erase(ch.pending.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

void SimDisk::ScheduleAll() {
  for (uint32_t ch = 0; ch < channels_.size(); ++ch) {
    ScheduleChannel(ch);
  }
}

bool SimDisk::IsPendingTag(IoTag tag) const {
  for (const Channel& ch : channels_) {
    for (const PendingIo& req : ch.pending) {
      if (req.tag == tag) {
        return true;
      }
    }
  }
  return false;
}

uint64_t SimDisk::TotalPending() const {
  uint64_t total = 0;
  for (const Channel& ch : channels_) {
    total += ch.pending.size();
  }
  return total;
}

StatusOr<IoTag> SimDisk::Enqueue(uint64_t sector, uint64_t count, bool is_read) {
  const IoTag tag = NextTag();
  // A transfer straddling a band boundary is owned entirely by the channel
  // of its first sector.
  const uint32_t ch_index = ChannelOf(sector);
  Channel& ch = channels_[ch_index];
  if (qos_.Active() && qos_.policy == QosPolicy::kWeightedShare) {
    // WFQ arrival rule: lag the arriving tenant's virtual time up to the
    // lowest vt among tenants with queued work, so a tenant cannot bank
    // credit while idle and then starve everyone else with a burst.
    if (request_tenant_ >= ch.vtime.size()) {
      ch.vtime.resize(request_tenant_ + 1, 0.0);
    }
    bool any = false;
    double min_active_vt = 0.0;
    for (const PendingIo& req : ch.pending) {
      const double vt = req.tenant < ch.vtime.size() ? ch.vtime[req.tenant] : 0.0;
      if (!any || vt < min_active_vt) {
        any = true;
        min_active_vt = vt;
      }
    }
    if (any) {
      ch.vtime[request_tenant_] = std::max(ch.vtime[request_tenant_], min_active_vt);
    }
  }
  ch.pending.push_back({tag, sector, count, is_read, clock_->Now(), request_tenant_, count,
                        /*first_wait_ms=*/-1.0});
  stats_.NoteRequest(request_tenant_, clock_->Now());
  stats_.queued_requests++;
  stats_.MutableChannel(ch_index).queued_requests++;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth, TotalPending());
  if (ch.pending.size() >= queue_depth_) {
    ScheduleChannel(ch_index);
  }
  return tag;
}

StatusOr<IoTag> SimDisk::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(ValidateRequest(sector, out.size()));
  // Data effects are applied at submit time; only timing is deferred. Reads
  // therefore observe every previously submitted write.
  storage_.CopyOut(sector * sector_size(), out);
  return Enqueue(sector, out.size() / sector_size(), /*is_read=*/true);
}

StatusOr<IoTag> SimDisk::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(ValidateRequest(sector, data.size()));
  storage_.CopyIn(sector * sector_size(), data);
  return Enqueue(sector, data.size() / sector_size(), /*is_read=*/false);
}

Status SimDisk::WaitFor(IoTag tag) {
  ScheduleAll();
  auto it = completed_.find(tag);
  // Under QoS dispatch a request can remain pending after ScheduleAll (its
  // channel only commits one slice at a time). Advance the clock to the
  // earliest moment any backlogged channel frees up and re-dispatch until
  // the tag's request finishes. The legacy path leaves nothing pending, so
  // this loop never runs there.
  while (it == completed_.end()) {
    if (!IsPendingTag(tag)) {
      return OkStatus();  // Already retired (e.g. by Drain).
    }
    double next = 0.0;
    bool any = false;
    for (const Channel& ch : channels_) {
      if (!ch.pending.empty() && (!any || ch.busy_until_seconds < next)) {
        any = true;
        next = ch.busy_until_seconds;
      }
    }
    // Every backlogged channel's busy-until is past now + slice (otherwise
    // ScheduleAll would have dispatched), so this strictly advances.
    clock_->AdvanceTo(next);
    ScheduleAll();
    it = completed_.find(tag);
  }
  clock_->AdvanceTo(it->second.completion_seconds);
  completed_.erase(it);
  return OkStatus();
}

std::vector<IoCompletion> SimDisk::Poll() {
  ScheduleAll();
  std::vector<IoCompletion> done;
  const double now = clock_->Now();
  for (auto it = completed_.begin(); it != completed_.end();) {
    if (it->second.completion_seconds <= now) {
      done.push_back({it->first, it->second.is_read, it->second.completion_seconds});
      it = completed_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(done.begin(), done.end(), [](const IoCompletion& a, const IoCompletion& b) {
    return a.completion_seconds < b.completion_seconds;
  });
  return done;
}

Status SimDisk::Drain() {
  ScheduleAll();
  // QoS dispatch parcels work out slice by slice; keep advancing the clock
  // until every channel's queue is empty (no-op on the legacy path).
  while (TotalPending() > 0) {
    double next = 0.0;
    bool any = false;
    for (const Channel& ch : channels_) {
      if (!ch.pending.empty() && (!any || ch.busy_until_seconds < next)) {
        any = true;
        next = ch.busy_until_seconds;
      }
    }
    clock_->AdvanceTo(next);
    ScheduleAll();
  }
  double last = clock_->Now();
  for (const auto& [tag, done] : completed_) {
    last = std::max(last, done.completion_seconds);
  }
  clock_->AdvanceTo(last);
  completed_.clear();
  return OkStatus();
}

double SimDisk::ScheduledCompletion(IoTag tag) const {
  auto it = completed_.find(tag);
  return it == completed_.end() ? -1.0 : it->second.completion_seconds;
}

Status SimDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  if (out.size() % sector_size() != 0) {
    return InvalidArgumentError("read size not sector-aligned");
  }
  ASSIGN_OR_RETURN(IoTag tag, SubmitRead(sector, out));
  return WaitFor(tag);
}

Status SimDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  if (data.size() % sector_size() != 0) {
    return InvalidArgumentError("write size not sector-aligned");
  }
  ASSIGN_OR_RETURN(IoTag tag, SubmitWrite(sector, data));
  return WaitFor(tag);
}

}  // namespace ld

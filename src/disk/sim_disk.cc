#include "src/disk/sim_disk.h"

#include <algorithm>
#include <cmath>

namespace ld {

SimDisk::SimDisk(const DiskGeometry& geometry, SimClock* clock, uint32_t num_channels)
    : geometry_(geometry), clock_(clock), storage_(geometry.CapacityBytes()) {
  const uint32_t nch = std::clamp<uint32_t>(num_channels, 1, geometry_.cylinders);
  cylinders_per_channel_ = geometry_.cylinders / nch;
  channels_.resize(nch);
  for (uint32_t ch = 0; ch < nch; ++ch) {
    // Each arm parks at the first cylinder of its band.
    channels_[ch].arm_cylinder = ch * cylinders_per_channel_;
  }
}

void SimDisk::ResetStats() {
  stats_ = DiskStats{};
  for (Channel& ch : channels_) {
    ch.busy_until_seconds = 0.0;
  }
}

uint32_t SimDisk::ChannelOf(uint64_t sector) const {
  const uint32_t sectors_per_cyl = geometry_.sectors_per_track * geometry_.heads;
  const uint32_t cyl = static_cast<uint32_t>(sector / sectors_per_cyl);
  const uint32_t ch = cyl / cylinders_per_channel_;
  return std::min<uint32_t>(ch, static_cast<uint32_t>(channels_.size()) - 1);
}

uint32_t SimDisk::AngularSlot(uint64_t sector) const {
  const uint64_t track = sector / geometry_.sectors_per_track;
  const uint64_t within = sector % geometry_.sectors_per_track;
  const uint64_t cylinder = track / geometry_.heads;
  return static_cast<uint32_t>(
      (within + track * geometry_.track_skew + cylinder * geometry_.cylinder_skew) %
      geometry_.sectors_per_track);
}

Status SimDisk::ValidateRequest(uint64_t sector, size_t bytes) const {
  if (bytes == 0 || bytes % geometry_.sector_size != 0) {
    return InvalidArgumentError("request size not sector-aligned");
  }
  const uint64_t count = bytes / geometry_.sector_size;
  if (sector + count > num_sectors()) {
    return InvalidArgumentError("disk request beyond device end");
  }
  return OkStatus();
}

double SimDisk::ServiceAt(uint32_t ch_index, double start_seconds, uint64_t sector,
                          uint64_t count, bool is_read) {
  Channel& ch = channels_[ch_index];
  ChannelStats& cstats = stats_.MutableChannel(ch_index);

  // Controller read-ahead buffer: a read that starts inside (or exactly at
  // the end of) the recently streamed window is served from the buffer;
  // only sectors beyond the window's end cost media-transfer time. This is
  // how real controllers make sequential reads cheap even when requests
  // overlap at sector granularity (sub-sector-aligned blocks re-read their
  // boundary sector).
  if (is_read && geometry_.read_ahead_buffer && sector >= ch.read_window_start &&
      sector <= ch.read_window_end) {
    const uint64_t end = sector + count;
    const uint64_t new_sectors = end > ch.read_window_end ? end - ch.read_window_end : 0;
    const double xfer_ms = static_cast<double>(new_sectors) * geometry_.SectorTimeMs();
    const double service_ms = geometry_.controller_overhead_ms + xfer_ms;
    stats_.transfer_ms += xfer_ms;
    stats_.busy_ms += service_ms;
    cstats.busy_ms += service_ms;
    if (end > ch.read_window_end) {
      ch.read_window_end = end;
    }
    // Bound the modeled buffer to 256 KB of trailing data.
    const uint64_t kWindowSectors = 512;
    if (ch.read_window_end - ch.read_window_start > kWindowSectors) {
      ch.read_window_start = ch.read_window_end - kWindowSectors;
    }
    const uint32_t sectors_per_cyl = geometry_.sectors_per_track * geometry_.heads;
    ch.arm_cylinder = static_cast<uint32_t>((ch.read_window_end - 1) / sectors_per_cyl);
    return start_seconds + service_ms / 1000.0;
  }
  if (is_read) {
    ch.read_window_start = sector;
    ch.read_window_end = sector + count;
  } else {
    ch.read_window_start = UINT64_MAX;  // Writes invalidate the read buffer.
    ch.read_window_end = UINT64_MAX;
  }

  const double period_ms = geometry_.RotationPeriodMs();
  const double sector_ms = geometry_.SectorTimeMs();
  const uint32_t spt = geometry_.sectors_per_track;

  // Times below are in milliseconds relative to an arbitrary epoch; the
  // rotational position is time modulo the rotation period.
  double time_ms = start_seconds * 1000.0;
  const double start_ms = time_ms;

  time_ms += geometry_.controller_overhead_ms;

  // Initial seek to the first cylinder of the transfer.
  const uint32_t sectors_per_cyl = spt * geometry_.heads;
  uint32_t target_cyl = static_cast<uint32_t>(sector / sectors_per_cyl);
  const uint32_t distance = target_cyl > ch.arm_cylinder ? target_cyl - ch.arm_cylinder
                                                         : ch.arm_cylinder - target_cyl;
  if (distance > 0) {
    const double seek_ms = geometry_.SeekTimeMs(distance);
    time_ms += seek_ms;
    stats_.seeks++;
    stats_.seek_ms += seek_ms;
    ch.arm_cylinder = target_cyl;
  }

  // Transfer track by track, waiting for the head to reach each chunk's
  // first sector. Track skew makes sequential multi-track transfers cheap.
  uint64_t pos = sector;
  const uint64_t end = sector + count;
  uint64_t prev_track = UINT64_MAX;
  while (pos < end) {
    const uint64_t track = pos / spt;
    const uint64_t track_end = (track + 1) * spt;
    const uint64_t chunk = (end < track_end ? end : track_end) - pos;

    if (prev_track != UINT64_MAX && track != prev_track) {
      const uint32_t cyl = static_cast<uint32_t>(track / geometry_.heads);
      if (cyl != ch.arm_cylinder) {
        const uint32_t d = cyl > ch.arm_cylinder ? cyl - ch.arm_cylinder : ch.arm_cylinder - cyl;
        const double seek_ms = geometry_.SeekTimeMs(d);
        time_ms += seek_ms;
        stats_.seek_ms += seek_ms;
        ch.arm_cylinder = cyl;
      } else {
        time_ms += geometry_.head_switch_ms;
      }
    }
    prev_track = track;

    // Rotational latency until the chunk's first sector comes under the head.
    const double angle_now = std::fmod(time_ms, period_ms) / sector_ms;  // in sector units
    const double target_angle = static_cast<double>(AngularSlot(pos));
    double wait_sectors = target_angle - angle_now;
    if (wait_sectors < 0.0) {
      wait_sectors += static_cast<double>(spt);
    }
    const double rot_ms = wait_sectors * sector_ms;
    time_ms += rot_ms;
    stats_.rotation_ms += rot_ms;

    const double xfer_ms = static_cast<double>(chunk) * sector_ms;
    time_ms += xfer_ms;
    stats_.transfer_ms += xfer_ms;
    pos += chunk;
  }

  stats_.busy_ms += time_ms - start_ms;
  cstats.busy_ms += time_ms - start_ms;
  return time_ms / 1000.0;
}

void SimDisk::ScheduleChannel(uint32_t ch_index) {
  Channel& ch = channels_[ch_index];
  if (ch.pending.empty()) {
    return;
  }
  std::vector<PendingIo> batch(ch.pending.begin(), ch.pending.end());
  ch.pending.clear();

  if (queue_policy_ == QueuePolicy::kCScan && batch.size() > 1) {
    // Circular elevator: sweep upward from the arm's current position, wrap
    // to the lowest request, and continue upward.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const PendingIo& a, const PendingIo& b) { return a.sector < b.sector; });
    const uint64_t head_sector = static_cast<uint64_t>(ch.arm_cylinder) *
                                 geometry_.sectors_per_track * geometry_.heads;
    auto pivot = std::find_if(batch.begin(), batch.end(), [head_sector](const PendingIo& r) {
      return r.sector >= head_sector;
    });
    std::rotate(batch.begin(), pivot, batch.end());
  }

  ChannelStats& cstats = stats_.MutableChannel(ch_index);
  size_t i = 0;
  while (i < batch.size()) {
    // Coalesce a run of physically adjacent same-direction requests into one
    // media transfer.
    size_t j = i + 1;
    uint64_t run_end = batch[i].sector + batch[i].count;
    double latest_submit = batch[i].submit_seconds;
    while (j < batch.size() && batch[j].is_read == batch[i].is_read &&
           batch[j].sector == run_end) {
      run_end += batch[j].count;
      latest_submit = std::max(latest_submit, batch[j].submit_seconds);
      ++j;
    }

    const double start = std::max(ch.busy_until_seconds, latest_submit);
    const double completion =
        ServiceAt(ch_index, start, batch[i].sector, run_end - batch[i].sector, batch[i].is_read);
    ch.busy_until_seconds = completion;

    for (size_t k = i; k < j; ++k) {
      completed_[batch[k].tag] = {batch[k].is_read, completion};
      stats_.queue_wait_ms += (start - batch[k].submit_seconds) * 1000.0;
      cstats.queue_wait_ms += (start - batch[k].submit_seconds) * 1000.0;
      if (batch[k].is_read) {
        stats_.read_ops++;
        stats_.sectors_read += batch[k].count;
        cstats.read_ops++;
        cstats.sectors_read += batch[k].count;
      } else {
        stats_.write_ops++;
        stats_.sectors_written += batch[k].count;
        cstats.write_ops++;
        cstats.sectors_written += batch[k].count;
      }
    }
    stats_.merged_requests += (j - i) - 1;
    i = j;
  }
}

void SimDisk::ScheduleAll() {
  for (uint32_t ch = 0; ch < channels_.size(); ++ch) {
    ScheduleChannel(ch);
  }
}

uint64_t SimDisk::TotalPending() const {
  uint64_t total = 0;
  for (const Channel& ch : channels_) {
    total += ch.pending.size();
  }
  return total;
}

StatusOr<IoTag> SimDisk::Enqueue(uint64_t sector, uint64_t count, bool is_read) {
  const IoTag tag = NextTag();
  // A transfer straddling a band boundary is owned entirely by the channel
  // of its first sector.
  const uint32_t ch_index = ChannelOf(sector);
  Channel& ch = channels_[ch_index];
  ch.pending.push_back({tag, sector, count, is_read, clock_->Now()});
  stats_.queued_requests++;
  stats_.MutableChannel(ch_index).queued_requests++;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth, TotalPending());
  if (ch.pending.size() >= queue_depth_) {
    ScheduleChannel(ch_index);
  }
  return tag;
}

StatusOr<IoTag> SimDisk::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(ValidateRequest(sector, out.size()));
  // Data effects are applied at submit time; only timing is deferred. Reads
  // therefore observe every previously submitted write.
  storage_.CopyOut(sector * sector_size(), out);
  return Enqueue(sector, out.size() / sector_size(), /*is_read=*/true);
}

StatusOr<IoTag> SimDisk::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(ValidateRequest(sector, data.size()));
  storage_.CopyIn(sector * sector_size(), data);
  return Enqueue(sector, data.size() / sector_size(), /*is_read=*/false);
}

Status SimDisk::WaitFor(IoTag tag) {
  ScheduleAll();
  auto it = completed_.find(tag);
  if (it == completed_.end()) {
    return OkStatus();  // Already retired (e.g. by Drain).
  }
  clock_->AdvanceTo(it->second.completion_seconds);
  completed_.erase(it);
  return OkStatus();
}

std::vector<IoCompletion> SimDisk::Poll() {
  ScheduleAll();
  std::vector<IoCompletion> done;
  const double now = clock_->Now();
  for (auto it = completed_.begin(); it != completed_.end();) {
    if (it->second.completion_seconds <= now) {
      done.push_back({it->first, it->second.is_read, it->second.completion_seconds});
      it = completed_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(done.begin(), done.end(), [](const IoCompletion& a, const IoCompletion& b) {
    return a.completion_seconds < b.completion_seconds;
  });
  return done;
}

Status SimDisk::Drain() {
  ScheduleAll();
  double last = clock_->Now();
  for (const auto& [tag, done] : completed_) {
    last = std::max(last, done.completion_seconds);
  }
  clock_->AdvanceTo(last);
  completed_.clear();
  return OkStatus();
}

double SimDisk::ScheduledCompletion(IoTag tag) const {
  auto it = completed_.find(tag);
  return it == completed_.end() ? -1.0 : it->second.completion_seconds;
}

Status SimDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  if (out.size() % sector_size() != 0) {
    return InvalidArgumentError("read size not sector-aligned");
  }
  ASSIGN_OR_RETURN(IoTag tag, SubmitRead(sector, out));
  return WaitFor(tag);
}

Status SimDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  if (data.size() % sector_size() != 0) {
    return InvalidArgumentError("write size not sector-aligned");
  }
  ASSIGN_OR_RETURN(IoTag tag, SubmitWrite(sector, data));
  return WaitFor(tag);
}

}  // namespace ld

#include "src/disk/sim_disk.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ld {

SimDisk::SimDisk(const DiskGeometry& geometry, SimClock* clock)
    : geometry_(geometry), clock_(clock) {
  const uint64_t total_bytes = geometry_.CapacityBytes();
  chunks_.resize((total_bytes + kChunkBytes - 1) / kChunkBytes);
}

uint32_t SimDisk::AngularSlot(uint64_t sector) const {
  const uint64_t track = sector / geometry_.sectors_per_track;
  const uint64_t within = sector % geometry_.sectors_per_track;
  const uint64_t cylinder = track / geometry_.heads;
  return static_cast<uint32_t>(
      (within + track * geometry_.track_skew + cylinder * geometry_.cylinder_skew) %
      geometry_.sectors_per_track);
}

Status SimDisk::ServiceRequest(uint64_t sector, uint64_t count, bool is_read) {
  if (count == 0) {
    return InvalidArgumentError("zero-length disk request");
  }
  if (sector + count > num_sectors()) {
    return InvalidArgumentError("disk request beyond device end");
  }

  // Controller read-ahead buffer: a read that starts inside (or exactly at
  // the end of) the recently streamed window is served from the buffer;
  // only sectors beyond the window's end cost media-transfer time. This is
  // how real controllers make sequential reads cheap even when requests
  // overlap at sector granularity (sub-sector-aligned blocks re-read their
  // boundary sector).
  if (is_read && geometry_.read_ahead_buffer && sector >= read_window_start_ &&
      sector <= read_window_end_) {
    const uint64_t end = sector + count;
    const uint64_t new_sectors = end > read_window_end_ ? end - read_window_end_ : 0;
    const double xfer_ms = static_cast<double>(new_sectors) * geometry_.SectorTimeMs();
    const double service_ms = geometry_.controller_overhead_ms + xfer_ms;
    stats_.transfer_ms += xfer_ms;
    stats_.busy_ms += service_ms;
    clock_->Advance(service_ms / 1000.0);
    if (end > read_window_end_) {
      read_window_end_ = end;
    }
    // Bound the modeled buffer to 256 KB of trailing data.
    const uint64_t kWindowSectors = 512;
    if (read_window_end_ - read_window_start_ > kWindowSectors) {
      read_window_start_ = read_window_end_ - kWindowSectors;
    }
    const uint32_t sectors_per_cyl = geometry_.sectors_per_track * geometry_.heads;
    arm_cylinder_ = static_cast<uint32_t>((read_window_end_ - 1) / sectors_per_cyl);
    return OkStatus();
  }
  if (is_read) {
    read_window_start_ = sector;
    read_window_end_ = sector + count;
  } else {
    read_window_start_ = UINT64_MAX;  // Writes invalidate the read buffer.
    read_window_end_ = UINT64_MAX;
  }

  const double period_ms = geometry_.RotationPeriodMs();
  const double sector_ms = geometry_.SectorTimeMs();
  const uint32_t spt = geometry_.sectors_per_track;

  // Times below are in milliseconds relative to an arbitrary epoch; the
  // rotational position is time modulo the rotation period.
  double time_ms = clock_->Now() * 1000.0;
  const double start_ms = time_ms;

  time_ms += geometry_.controller_overhead_ms;

  // Initial seek to the first cylinder of the transfer.
  const uint32_t sectors_per_cyl = spt * geometry_.heads;
  uint32_t target_cyl = static_cast<uint32_t>(sector / sectors_per_cyl);
  const uint32_t distance = target_cyl > arm_cylinder_ ? target_cyl - arm_cylinder_
                                                       : arm_cylinder_ - target_cyl;
  if (distance > 0) {
    const double seek_ms = geometry_.SeekTimeMs(distance);
    time_ms += seek_ms;
    stats_.seeks++;
    stats_.seek_ms += seek_ms;
    arm_cylinder_ = target_cyl;
  }

  // Transfer track by track, waiting for the head to reach each chunk's
  // first sector. Track skew makes sequential multi-track transfers cheap.
  uint64_t pos = sector;
  const uint64_t end = sector + count;
  uint64_t prev_track = UINT64_MAX;
  while (pos < end) {
    const uint64_t track = pos / spt;
    const uint64_t track_end = (track + 1) * spt;
    const uint64_t chunk = (end < track_end ? end : track_end) - pos;

    if (prev_track != UINT64_MAX && track != prev_track) {
      const uint32_t cyl = static_cast<uint32_t>(track / geometry_.heads);
      if (cyl != arm_cylinder_) {
        const uint32_t d = cyl > arm_cylinder_ ? cyl - arm_cylinder_ : arm_cylinder_ - cyl;
        const double seek_ms = geometry_.SeekTimeMs(d);
        time_ms += seek_ms;
        stats_.seek_ms += seek_ms;
        arm_cylinder_ = cyl;
      } else {
        time_ms += geometry_.head_switch_ms;
      }
    }
    prev_track = track;

    // Rotational latency until the chunk's first sector comes under the head.
    const double angle_now = std::fmod(time_ms, period_ms) / sector_ms;  // in sector units
    const double target_angle = static_cast<double>(AngularSlot(pos));
    double wait_sectors = target_angle - angle_now;
    if (wait_sectors < 0.0) {
      wait_sectors += static_cast<double>(spt);
    }
    const double rot_ms = wait_sectors * sector_ms;
    time_ms += rot_ms;
    stats_.rotation_ms += rot_ms;

    const double xfer_ms = static_cast<double>(chunk) * sector_ms;
    time_ms += xfer_ms;
    stats_.transfer_ms += xfer_ms;
    pos += chunk;
  }

  stats_.busy_ms += time_ms - start_ms;
  clock_->AdvanceTo(time_ms / 1000.0);
  return OkStatus();
}

uint8_t* SimDisk::ChunkFor(uint64_t byte_offset, bool allocate) {
  const uint64_t index = byte_offset / kChunkBytes;
  if (chunks_[index] == nullptr) {
    if (!allocate) {
      return nullptr;
    }
    chunks_[index] = std::make_unique<uint8_t[]>(kChunkBytes);
    std::memset(chunks_[index].get(), 0, kChunkBytes);
  }
  return chunks_[index].get();
}

Status SimDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  if (out.size() % sector_size() != 0) {
    return InvalidArgumentError("read size not sector-aligned");
  }
  const uint64_t count = out.size() / sector_size();
  RETURN_IF_ERROR(ServiceRequest(sector, count, /*is_read=*/true));
  stats_.read_ops++;
  stats_.sectors_read += count;

  uint64_t byte = sector * sector_size();
  size_t copied = 0;
  while (copied < out.size()) {
    const uint64_t within = byte % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, out.size() - copied));
    uint8_t* chunk = ChunkFor(byte, /*allocate=*/false);
    if (chunk != nullptr) {
      std::memcpy(out.data() + copied, chunk + within, n);
    } else {
      std::memset(out.data() + copied, 0, n);  // Never-written area reads as zeros.
    }
    copied += n;
    byte += n;
  }
  return OkStatus();
}

Status SimDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  if (data.size() % sector_size() != 0) {
    return InvalidArgumentError("write size not sector-aligned");
  }
  const uint64_t count = data.size() / sector_size();
  RETURN_IF_ERROR(ServiceRequest(sector, count, /*is_read=*/false));
  stats_.write_ops++;
  stats_.sectors_written += count;

  uint64_t byte = sector * sector_size();
  size_t copied = 0;
  while (copied < data.size()) {
    const uint64_t within = byte % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, data.size() - copied));
    uint8_t* chunk = ChunkFor(byte, /*allocate=*/true);
    std::memcpy(chunk + within, data.data() + copied, n);
    copied += n;
    byte += n;
  }
  return OkStatus();
}

}  // namespace ld

// Zero-latency in-memory block device for unit tests: same semantics as
// SimDisk (sector-aligned transfers, zeros for never-written areas) but no
// timing model, so structural tests run fast and deterministically.

#ifndef SRC_DISK_MEM_DISK_H_
#define SRC_DISK_MEM_DISK_H_

#include <vector>

#include "src/disk/block_device.h"

namespace ld {

class MemDisk : public BlockDevice {
 public:
  MemDisk(uint64_t num_sectors, uint32_t sector_size, SimClock* clock);

  uint32_t sector_size() const override { return sector_size_; }
  uint64_t num_sectors() const override { return num_sectors_; }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  // Sticky request context, kept so maintenance I/O is attributed correctly
  // in the idle-signal counters even on the zero-latency device.
  void set_request_tenant(TenantId tenant) override { tenant_ = tenant; }
  TenantId request_tenant() const override { return tenant_; }

  SimClock* clock() override { return clock_; }
  const DiskStats& stats() const override { return stats_; }
  DiskStats* mutable_stats() override { return &stats_; }
  void ResetStats() override { stats_ = DiskStats{}; }

 private:
  uint64_t num_sectors_;
  uint32_t sector_size_;
  SimClock* clock_;
  TenantId tenant_ = kDefaultTenant;
  DiskStats stats_;
  std::vector<uint8_t> storage_;
};

}  // namespace ld

#endif  // SRC_DISK_MEM_DISK_H_

// Fault-injection wrapper used by recovery/robustness tests and benches.
//
// A FaultDisk forwards requests to an underlying device and injects media
// faults on the way through:
//
//  * Crash scheduling: CrashAfterWrites() fails the Nth write from now,
//    optionally persisting only a torn prefix of its sectors — a power
//    failure mid-segment-write. After the crash every request fails until
//    ClearFault() (the "reboot").
//  * Latent sector errors: sectors in the latent set fail every read with
//    IO_ERROR until they are rewritten (a rewrite remaps the sector, the
//    way real firmware heals a grown defect). Latent errors survive
//    ClearFault(): a reboot does not heal media.
//  * Transient errors: whole requests fail with IO_ERROR at a configured
//    probability, in bursts of bounded length, then succeed on retry.
//  * Silent corruption: written sectors are bit-flipped at a configured
//    probability, or explicitly via CorruptSector(). The flipped bytes are
//    stored on the inner device, so corruption persists across
//    ClearFault() and is only discovered by checksum verification above.
//
// Random faults are driven by a seeded Rng (FaultPlan::seed), so every
// fault schedule is deterministic and reproducible.

#ifndef SRC_DISK_FAULT_DISK_H_
#define SRC_DISK_FAULT_DISK_H_

#include <cstdint>
#include <unordered_set>

#include "src/disk/block_device.h"
#include "src/util/random.h"

namespace ld {

// Probabilistic fault schedule. All probabilities default to zero, so a
// default FaultPlan injects nothing; crash scheduling composes on top.
struct FaultPlan {
  uint64_t seed = 1;

  // Per-request probability that a read/write fails with a transient
  // IO_ERROR. A triggered fault starts a burst: the next `burst` requests of
  // that kind also fail, where burst is drawn uniformly from
  // [1, max_transient_burst]. The request after a burst always succeeds (no
  // new burst may trigger on it), so max_transient_burst is a hard bound on
  // consecutive transient failures and retry loops with a larger attempt
  // budget are guaranteed to get through.
  double transient_read_error_rate = 0.0;
  double transient_write_error_rate = 0.0;
  uint32_t max_transient_burst = 1;

  // Per-write probability that one sector of the written range develops a
  // latent error: the write itself succeeds, but later reads covering that
  // sector fail with IO_ERROR until it is rewritten.
  double latent_error_rate = 0.0;

  // Per-written-sector probability of a silent single-bit flip in the data
  // as it lands on media. Undetectable at the device interface.
  double bit_flip_rate = 0.0;
};

class FaultDisk : public BlockDevice {
 public:
  explicit FaultDisk(BlockDevice* inner) : inner_(inner), rng_(1) {}

  // Installs a probabilistic fault schedule (and reseeds the fault Rng).
  void SetFaultPlan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }

  // Crashes on the Nth write from now (1 = the next write). If
  // `torn_sectors` >= 0, that write persists only its first `torn_sectors`
  // sectors before failing; otherwise it fails without persisting anything.
  void CrashAfterWrites(uint64_t n, int64_t torn_sectors = -1);

  // Immediately enter the crashed state.
  void CrashNow() { crashed_ = true; }

  // Leave the crashed state (the "reboot"). Clears crash scheduling and any
  // in-progress transient burst, but *preserves* latent sector errors and
  // corrupted sector contents: a reboot does not heal media.
  void ClearFault();

  bool crashed() const { return crashed_; }

  // --- Explicit media-fault injection -------------------------------------

  // Marks `sector` with a latent error: reads covering it fail with
  // IO_ERROR until the sector is rewritten.
  void InjectLatentError(uint64_t sector) { latent_sectors_.insert(sector); }
  bool HasLatentError(uint64_t sector) const { return latent_sectors_.count(sector) != 0; }
  size_t latent_error_count() const { return latent_sectors_.size(); }

  // Silently corrupts the stored contents of `sector` by XOR-ing
  // `xor_mask` into the byte at `byte_offset`. The damage is written to the
  // inner device (bypassing fault checks), so it persists across reboots.
  Status CorruptSector(uint64_t sector, uint32_t byte_offset = 0, uint8_t xor_mask = 0x01);

  // Number of silent bit flips injected so far (random plus explicit).
  uint64_t corruptions_injected() const { return corruptions_injected_; }

  // --- Whole-channel failure ----------------------------------------------

  // Fails channel `ch`: every request touching a sector owned by the channel
  // returns a typed IO_ERROR until the channel is healed. Models a dead
  // actuator/flash channel; survives ClearFault() like other media damage.
  void FailChannel(uint32_t ch) { failed_channels_.insert(ch); }

  // Replaces the channel with a blank spare: I/O is accepted again, but the
  // channel's media reads back as zeros (the old contents are gone). The LD
  // above is expected to re-materialize segments via Lld::Rebuild.
  Status HealChannel(uint32_t ch);

  bool channel_failed(uint32_t ch) const { return failed_channels_.count(ch) != 0; }
  size_t failed_channel_count() const { return failed_channels_.size(); }

  uint32_t sector_size() const override { return inner_->sector_size(); }
  uint64_t num_sectors() const override { return inner_->num_sectors(); }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  // Async requests are forwarded to the inner device; faults are injected at
  // submit time, which models a crash that strikes while the write is in
  // flight (a torn write persists only its prefix, and the submit fails).
  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out) override;
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data) override;
  Status WaitFor(IoTag tag) override { return inner_->WaitFor(tag); }
  std::vector<IoCompletion> Poll() override { return inner_->Poll(); }
  Status Drain() override { return inner_->Drain(); }

  // Scheduling knobs and channel topology pass straight through so fault
  // injection composes with multi-channel devices and queue A/B tests.
  void set_queue_policy(QueuePolicy policy) override { inner_->set_queue_policy(policy); }
  QueuePolicy queue_policy() const override { return inner_->queue_policy(); }
  void set_queue_depth(uint32_t depth) override { inner_->set_queue_depth(depth); }
  uint32_t queue_depth() const override { return inner_->queue_depth(); }
  uint32_t num_channels() const override { return inner_->num_channels(); }
  uint32_t ChannelOf(uint64_t sector) const override { return inner_->ChannelOf(sector); }
  void set_request_tenant(TenantId tenant) override { inner_->set_request_tenant(tenant); }
  TenantId request_tenant() const override { return inner_->request_tenant(); }
  void set_qos(const QosConfig& config) override { inner_->set_qos(config); }
  QosConfig qos() const override { return inner_->qos(); }
  double ScheduledCompletion(IoTag tag) const override {
    return inner_->ScheduledCompletion(tag);
  }

  SimClock* clock() override { return inner_->clock(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }
  DiskStats* mutable_stats() override { return inner_->mutable_stats(); }

 private:
  // Fault checks shared by the sync and async paths. Each returns OK or the
  // injected failure, and counts the failure in the device health stats.
  Status CheckReadFault(uint64_t sector, size_t bytes);
  Status CheckWriteFault(uint64_t sector, std::span<const uint8_t> data);
  Status CountReadError(uint64_t sector, Status s);
  Status CountWriteError(uint64_t sector, Status s);

  // Returns the failed channel owning any sector of [sector, sector+sectors),
  // or -1 when the range lies entirely on live channels.
  int64_t FailedChannelOf(uint64_t sector, uint64_t sectors) const;

  // Applies post-acceptance write effects: heals rewritten latent sectors,
  // develops new latent errors, and bit-flips sectors as they land. Returns
  // the (possibly corrupted) bytes to store.
  void ApplyWriteEffects(uint64_t sector, std::span<const uint8_t> data);

  BlockDevice* inner_;
  bool crashed_ = false;
  bool armed_ = false;
  uint64_t writes_until_crash_ = 0;
  int64_t torn_sectors_ = -1;

  FaultPlan plan_;
  Rng rng_;
  uint32_t read_burst_left_ = 0;
  uint32_t write_burst_left_ = 0;
  // Set when a burst drains: the next request of that kind may not start a
  // fresh burst, keeping max_transient_burst a hard bound.
  bool read_cooldown_ = false;
  bool write_cooldown_ = false;
  std::unordered_set<uint64_t> latent_sectors_;
  std::unordered_set<uint32_t> failed_channels_;
  uint64_t corruptions_injected_ = 0;
  std::vector<uint8_t> scratch_;  // Sector buffer for corruption writes.
};

}  // namespace ld

#endif  // SRC_DISK_FAULT_DISK_H_

// Fault-injection wrapper used by recovery tests and the recovery benchmark.
//
// A FaultDisk forwards requests to an underlying device until a scheduled
// crash point; the crash can also tear the in-flight write (persist only a
// prefix of its sectors), which is how a power failure interrupts a long
// segment write. After the crash every request fails with IO_ERROR until
// ClearFault() — simulating the restart, after which recovery reads the disk
// image the crash left behind.

#ifndef SRC_DISK_FAULT_DISK_H_
#define SRC_DISK_FAULT_DISK_H_

#include <cstdint>

#include "src/disk/block_device.h"

namespace ld {

class FaultDisk : public BlockDevice {
 public:
  explicit FaultDisk(BlockDevice* inner) : inner_(inner) {}

  // Crashes on the Nth write from now (1 = the next write). If
  // `torn_sectors` >= 0, that write persists only its first `torn_sectors`
  // sectors before failing; otherwise it fails without persisting anything.
  void CrashAfterWrites(uint64_t n, int64_t torn_sectors = -1);

  // Immediately enter the crashed state.
  void CrashNow() { crashed_ = true; }

  // Leave the crashed state (the "reboot").
  void ClearFault();

  bool crashed() const { return crashed_; }

  uint32_t sector_size() const override { return inner_->sector_size(); }
  uint64_t num_sectors() const override { return inner_->num_sectors(); }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  SimClock* clock() override { return inner_->clock(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  BlockDevice* inner_;
  bool crashed_ = false;
  bool armed_ = false;
  uint64_t writes_until_crash_ = 0;
  int64_t torn_sectors_ = -1;
};

}  // namespace ld

#endif  // SRC_DISK_FAULT_DISK_H_

// Fault-injection wrapper used by recovery tests and the recovery benchmark.
//
// A FaultDisk forwards requests to an underlying device until a scheduled
// crash point; the crash can also tear the in-flight write (persist only a
// prefix of its sectors), which is how a power failure interrupts a long
// segment write. After the crash every request fails with IO_ERROR until
// ClearFault() — simulating the restart, after which recovery reads the disk
// image the crash left behind.

#ifndef SRC_DISK_FAULT_DISK_H_
#define SRC_DISK_FAULT_DISK_H_

#include <cstdint>

#include "src/disk/block_device.h"

namespace ld {

class FaultDisk : public BlockDevice {
 public:
  explicit FaultDisk(BlockDevice* inner) : inner_(inner) {}

  // Crashes on the Nth write from now (1 = the next write). If
  // `torn_sectors` >= 0, that write persists only its first `torn_sectors`
  // sectors before failing; otherwise it fails without persisting anything.
  void CrashAfterWrites(uint64_t n, int64_t torn_sectors = -1);

  // Immediately enter the crashed state.
  void CrashNow() { crashed_ = true; }

  // Leave the crashed state (the "reboot").
  void ClearFault();

  bool crashed() const { return crashed_; }

  uint32_t sector_size() const override { return inner_->sector_size(); }
  uint64_t num_sectors() const override { return inner_->num_sectors(); }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  // Async requests are forwarded to the inner device; faults are injected at
  // submit time, which models a crash that strikes while the write is in
  // flight (a torn write persists only its prefix, and the submit fails).
  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out) override;
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data) override;
  Status WaitFor(IoTag tag) override { return inner_->WaitFor(tag); }
  std::vector<IoCompletion> Poll() override { return inner_->Poll(); }
  Status Drain() override { return inner_->Drain(); }

  // Scheduling knobs and channel topology pass straight through so fault
  // injection composes with multi-channel devices and queue A/B tests.
  void set_queue_policy(QueuePolicy policy) override { inner_->set_queue_policy(policy); }
  QueuePolicy queue_policy() const override { return inner_->queue_policy(); }
  void set_queue_depth(uint32_t depth) override { inner_->set_queue_depth(depth); }
  uint32_t queue_depth() const override { return inner_->queue_depth(); }
  uint32_t num_channels() const override { return inner_->num_channels(); }
  uint32_t ChannelOf(uint64_t sector) const override { return inner_->ChannelOf(sector); }
  double ScheduledCompletion(IoTag tag) const override {
    return inner_->ScheduledCompletion(tag);
  }

  SimClock* clock() override { return inner_->clock(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  // Applies the crash countdown for one write-sized request; on the crashing
  // write, persists the torn prefix (if any) and returns the failure the
  // caller must surface. Shared by the sync and async write paths.
  Status CheckWriteFault(uint64_t sector, std::span<const uint8_t> data);

  BlockDevice* inner_;
  bool crashed_ = false;
  bool armed_ = false;
  uint64_t writes_until_crash_ = 0;
  int64_t torn_sectors_ = -1;
};

}  // namespace ld

#endif  // SRC_DISK_FAULT_DISK_H_

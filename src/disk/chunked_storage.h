// Lazily allocated byte store backing the simulated devices. Storage is
// allocated in 1-MB chunks on first write so multi-gigabyte devices can be
// simulated cheaply; never-written areas read as zeros.

#ifndef SRC_DISK_CHUNKED_STORAGE_H_
#define SRC_DISK_CHUNKED_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ld {

class ChunkedStorage {
 public:
  explicit ChunkedStorage(uint64_t total_bytes);

  void CopyOut(uint64_t byte_offset, std::span<uint8_t> out) const;
  void CopyIn(uint64_t byte_offset, std::span<const uint8_t> data);

 private:
  uint8_t* ChunkFor(uint64_t byte_offset, bool allocate) const;

  static constexpr uint64_t kChunkBytes = 1 << 20;
  // Mutable so CopyOut stays const; allocation is an invisible side effect.
  mutable std::vector<std::unique_ptr<uint8_t[]>> chunks_;
};

}  // namespace ld

#endif  // SRC_DISK_CHUNKED_STORAGE_H_

// Simulated NVMe-style flash device: no seek or rotation model, a deep
// tagged queue (hundreds of outstanding requests), and a timing model of
// fixed per-request latency plus bandwidth shared across in-flight
// transfers.
//
// Timing model. Each request becomes *active* a fixed latency after it is
// submitted (reads pay flash-read latency, writes the program-buffer
// latency) and then drains its payload over a link of bandwidth B shared
// equally by the n currently active transfers (processor-sharing fluid
// model). A batch of pending requests is simulated event-by-event —
// arrivals join the active set, the earliest-finishing transfer leaves it —
// so k concurrent same-size transfers each take ~k times the unloaded
// transfer time while aggregate bandwidth stays at B. Transfers scheduled
// in different batches (separated by a WaitFor/Poll/Drain) do not share
// bandwidth with each other; this window-based approximation keeps
// scheduling lazy, exactly like SimDisk's.
//
// Like every simulated device here, data effects apply eagerly at submit;
// only timing is deferred. Sync Read/Write are submit + wait.

#ifndef SRC_DISK_NVME_DEVICE_H_
#define SRC_DISK_NVME_DEVICE_H_

#include <deque>
#include <unordered_map>

#include "src/disk/block_device.h"
#include "src/disk/chunked_storage.h"

namespace ld {

struct NvmeConfig {
  uint64_t capacity_bytes = 0;
  uint32_t sector_size = 512;
  // Fixed per-request latency before the transfer starts draining.
  double read_latency_us = 80.0;   // Flash read + FTL lookup.
  double write_latency_us = 20.0;  // DRAM program buffer ack.
  // Link/media bandwidth shared by all in-flight transfers.
  double bandwidth_mb_per_s = 3200.0;
  // Requests pend until this many are outstanding (or the caller waits).
  uint32_t queue_depth = 256;
};

class NvmeDevice : public BlockDevice {
 public:
  NvmeDevice(const NvmeConfig& config, SimClock* clock);

  uint32_t sector_size() const override { return config_.sector_size; }
  uint64_t num_sectors() const override { return num_sectors_; }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out) override;
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data) override;
  Status WaitFor(IoTag tag) override;
  std::vector<IoCompletion> Poll() override;
  Status Drain() override;

  // An NVMe device has no arm to schedule around; the policy knob is
  // accepted (so benches can A/B uniformly) but does not change timing.
  void set_queue_policy(QueuePolicy policy) override { queue_policy_ = policy; }
  QueuePolicy queue_policy() const override { return queue_policy_; }
  void set_queue_depth(uint32_t depth) override { queue_depth_ = depth == 0 ? 1 : depth; }
  uint32_t queue_depth() const override { return queue_depth_; }

  // Tenant context. Under kWeightedShare with several tenants the fluid
  // model shares the link by tenant weight instead of equally per transfer
  // (each tenant's share then splits equally among its own transfers). The
  // fluid model is inherently preemptive, so kDeadline adds nothing here and
  // behaves like the equal-share schedule (tenant accounting still applies).
  void set_request_tenant(TenantId tenant) override { request_tenant_ = tenant; }
  TenantId request_tenant() const override { return request_tenant_; }
  void set_qos(const QosConfig& config) override { qos_ = config; }
  QosConfig qos() const override { return qos_; }

  double ScheduledCompletion(IoTag tag) const override;

  SimClock* clock() override { return clock_; }
  const DiskStats& stats() const override { return stats_; }
  DiskStats* mutable_stats() override { return &stats_; }
  void ResetStats() override {
    stats_ = DiskStats{};
    link_free_seconds_ = 0.0;
  }

  const NvmeConfig& config() const { return config_; }

 private:
  struct PendingIo {
    IoTag tag;
    uint64_t count;
    bool is_read;
    double submit_seconds;
    TenantId tenant = kDefaultTenant;
  };
  struct DoneIo {
    bool is_read;
    double completion_seconds;
  };

  Status ValidateRequest(uint64_t sector, size_t bytes) const;

  // Runs the processor-sharing fluid simulation over every pending request,
  // assigning completion times (moves pending_ entries into completed_).
  // Never touches the clock.
  void ScheduleAll();

  double LatencySeconds(bool is_read) const {
    return (is_read ? config_.read_latency_us : config_.write_latency_us) * 1e-6;
  }
  double BytesPerSecond() const { return config_.bandwidth_mb_per_s * 1e6; }

  NvmeConfig config_;
  SimClock* clock_;
  uint64_t num_sectors_;
  DiskStats stats_;

  QueuePolicy queue_policy_ = QueuePolicy::kFifo;
  uint32_t queue_depth_;
  TenantId request_tenant_ = kDefaultTenant;
  QosConfig qos_;
  std::deque<PendingIo> pending_;
  std::unordered_map<IoTag, DoneIo> completed_;
  // Instant the link finished the last scheduled batch (for stats only; the
  // window approximation means it does not delay the next batch).
  double link_free_seconds_ = 0.0;

  ChunkedStorage storage_;
};

}  // namespace ld

#endif  // SRC_DISK_NVME_DEVICE_H_

// Multi-tenant request context and QoS dispatch configuration.
//
// The paper presents the logical disk as a *service* interface between file
// management and disk management (§2). Once several file systems share one
// device, the queue layer needs to know which session each request belongs
// to — otherwise a tenant's segment flush or cleaner batch monopolizes the
// arm and every other tenant's demand reads starve behind it. A TenantId
// rides down the stack (MinixFs → backend → LogicalDisk/Lld → BlockDevice)
// as sticky per-device request context, and the queueing devices consult a
// QosConfig to decide dispatch order between tenants.
//
// QoS is strictly a *between-tenants* policy: with one tenant (or policy
// kNone) the devices run their original C-SCAN/FIFO batch scheduling code
// unchanged, so single-tenant runs are byte-identical whether or not a QoS
// policy is configured.

#ifndef SRC_DISK_QOS_H_
#define SRC_DISK_QOS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ld {

// Identifies the session a request belongs to. Dense small integers: tenant
// t indexes QosConfig::weights and DiskStats::tenant(t).
using TenantId = uint32_t;
inline constexpr TenantId kDefaultTenant = 0;
// Sentinel for "no maintenance tenant registered" in DiskStats: tenant ids
// are dense small integers, so the all-ones value can never collide with a
// real session.
inline constexpr TenantId kNoMaintenanceTenant = 0xffffffffu;

// How a queueing device orders requests *between* tenants. Within a tenant
// the device's QueuePolicy (FIFO/C-SCAN) still applies.
enum class QosPolicy {
  kNone,           // Single-client behaviour: one global batch schedule.
  kWeightedShare,  // Weighted fair queueing over per-tenant virtual time.
  kDeadline,       // Earliest deadline first (reads get tight deadlines).
};

struct QosConfig {
  QosPolicy policy = QosPolicy::kNone;
  // Number of tenant sessions sharing the device. Dispatch only deviates
  // from the legacy path when more than one tenant is configured.
  uint32_t num_tenants = 1;
  // Per-tenant weights for kWeightedShare; missing entries default to 1.
  std::vector<uint32_t> weights;
  // Target service deadlines for kDeadline, measured from submit time.
  // Reads are latency-sensitive; writes (segment flushes) are not.
  double read_deadline_ms = 20.0;
  double write_deadline_ms = 200.0;
  // Dispatch horizon: a channel only commits work up to `slice_ms` ahead of
  // the current clock, creating preemption points between large transfers.
  double slice_ms = 4.0;
  // Large transfers are serviced in chunks of at most this size so one
  // tenant's 512 KB segment write cannot occupy the arm in one piece.
  uint32_t chunk_kb = 64;
  // A request that waits longer than this before service counts as starved
  // in its tenant's stats.
  double starvation_threshold_ms = 100.0;

  // True when dispatch should use the QoS path at all.
  bool Active() const { return policy != QosPolicy::kNone && num_tenants > 1; }

  uint32_t WeightOf(TenantId t) const {
    if (t < weights.size() && weights[t] > 0) {
      return weights[t];
    }
    return 1;
  }
};

// Fixed-size log-bucket latency histogram (√2-wide buckets over microseconds,
// covering ~1 µs .. ~4000 s). Cheap enough to keep per tenant per device and
// good to ~±19% on any quantile, which is plenty for p50/p99 reporting.
class LatencyHistogram {
 public:
  void Add(double ms);
  // Returns the representative latency (ms) of the bucket holding the q-th
  // quantile sample (q in [0,1]); 0 when empty.
  double Quantile(double q) const;
  uint64_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double MeanMs() const { return count_ == 0 ? 0.0 : total_ms_ / static_cast<double>(count_); }

 private:
  static constexpr size_t kBuckets = 64;
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double total_ms_ = 0.0;
};

// Per-tenant activity breakdown a queueing device keeps alongside its global
// DiskStats. Latencies are end-to-end (queue wait + service).
struct TenantStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  double queue_wait_ms = 0.0;     // Time this tenant's requests waited.
  double busy_ms = 0.0;           // Service time consumed by this tenant.
  uint64_t starved_requests = 0;  // Waited past starvation_threshold_ms.
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
};

}  // namespace ld

#endif  // SRC_DISK_QOS_H_

// Simulated clock shared by the disk model and the file systems.
//
// All benchmark results in this repository are computed from this clock, the
// way the paper computes files/sec and KB/s from wall-clock time on a real
// disk. Devices advance it by their service time; file systems may charge
// small CPU costs (e.g. compression bandwidth) to it as well.

#ifndef SRC_DISK_CLOCK_H_
#define SRC_DISK_CLOCK_H_

#include <cassert>

namespace ld {

class SimClock {
 public:
  SimClock() = default;

  double Now() const { return now_seconds_; }

  void Advance(double seconds) {
    assert(seconds >= 0.0);
    now_seconds_ += seconds;
  }

  void AdvanceTo(double seconds) {
    if (seconds > now_seconds_) {
      now_seconds_ = seconds;
    }
  }

  void Reset() { now_seconds_ = 0.0; }

 private:
  double now_seconds_ = 0.0;
};

}  // namespace ld

#endif  // SRC_DISK_CLOCK_H_

// A contiguous slice of a shared BlockDevice, presented as a device of its
// own — the glue that lets N tenant sessions (each with its own Lld instance
// and file system) share one simulated device and its channel set.
//
// A PartitionDevice owns sectors [first_sector, first_sector + num_sectors)
// of the parent and translates every request by first_sector. It is also the
// tenant boundary: it re-asserts its TenantId as the parent's sticky request
// context before every forwarded call, so requests from different sessions
// are correctly attributed no matter how their submissions interleave.
//
// Queue semantics: requests from all partitions share the parent's
// per-channel queues — that contention is the point. WaitFor and Drain
// operate on this partition's requests only (Drain waits out the tags this
// wrapper submitted, not the whole parent), so one tenant syncing does not
// advance the clock to another tenant's in-flight completions. Poll forwards
// to the parent and reports only this partition's completions; foreign
// completions the parent retires in the same call are dropped, which is safe
// because completions are advisory here (every in-tree caller either
// discards them or tracks tags through WaitFor).
//
// Stats are the parent's: global/channel/tenant counters all live in the
// shared device so cross-tenant reports come from one place.

#ifndef SRC_DISK_PARTITION_DEVICE_H_
#define SRC_DISK_PARTITION_DEVICE_H_

#include <unordered_set>

#include "src/disk/block_device.h"

namespace ld {

class PartitionDevice : public BlockDevice {
 public:
  // The parent must outlive the partition. `first_sector` + `num_sectors`
  // must fit inside the parent.
  PartitionDevice(BlockDevice* parent, uint64_t first_sector, uint64_t num_sectors,
                  TenantId tenant);

  uint32_t sector_size() const override { return parent_->sector_size(); }
  uint64_t num_sectors() const override { return num_sectors_; }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out) override;
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data) override;
  Status WaitFor(IoTag tag) override;
  std::vector<IoCompletion> Poll() override;
  // Waits out this partition's outstanding requests only.
  Status Drain() override;

  // Queue knobs configure the shared parent queue (last writer wins; the
  // harness sets them once on the parent instead).
  void set_queue_policy(QueuePolicy policy) override { parent_->set_queue_policy(policy); }
  QueuePolicy queue_policy() const override { return parent_->queue_policy(); }
  void set_queue_depth(uint32_t depth) override { parent_->set_queue_depth(depth); }
  uint32_t queue_depth() const override { return parent_->queue_depth(); }

  // This wrapper *is* the tenant boundary: setting the request tenant
  // re-labels the partition itself.
  void set_request_tenant(TenantId tenant) override { tenant_ = tenant; }
  TenantId request_tenant() const override { return tenant_; }
  void set_qos(const QosConfig& config) override { parent_->set_qos(config); }
  QosConfig qos() const override { return parent_->qos(); }

  uint32_t num_channels() const override { return parent_->num_channels(); }
  uint32_t ChannelOf(uint64_t sector) const override {
    return parent_->ChannelOf(first_sector_ + sector);
  }
  double ScheduledCompletion(IoTag tag) const override {
    return parent_->ScheduledCompletion(tag);
  }

  SimClock* clock() override { return parent_->clock(); }
  const DiskStats& stats() const override { return parent_->stats(); }
  DiskStats* mutable_stats() override { return parent_->mutable_stats(); }
  void ResetStats() override { parent_->ResetStats(); }

  uint64_t first_sector() const { return first_sector_; }
  size_t outstanding_requests() const { return outstanding_.size(); }

 private:
  Status ValidateRange(uint64_t sector, size_t bytes) const;

  BlockDevice* parent_;
  uint64_t first_sector_;
  uint64_t num_sectors_;
  TenantId tenant_;
  // Tags this partition submitted and has not yet seen retire. Tags are
  // unique per parent device, so membership identifies ownership.
  std::unordered_set<IoTag> outstanding_;
};

}  // namespace ld

#endif  // SRC_DISK_PARTITION_DEVICE_H_

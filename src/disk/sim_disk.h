// Event-driven simulated disk with the mechanical timing model described in
// src/disk/geometry.h: seeks, head switches, rotational position, track skew,
// and per-request controller overhead. Storage is allocated lazily in 1-MB
// chunks so multi-gigabyte devices can be simulated cheaply.
//
// Requests go through a per-device queue: SubmitRead/SubmitWrite enqueue a
// request (copying its data immediately — the simulator is single-threaded,
// so reads always observe previously submitted writes) and the mechanical
// service time is computed when the request is *scheduled*. The scheduler
// runs whenever the queue reaches the configured depth or the caller waits
// (WaitFor/Drain) or polls; it orders each batch FIFO or C-SCAN and merges
// physically adjacent same-direction requests into one media transfer.
//
// Service start time is max(device busy-until, submit time), so a single
// outstanding request is timed exactly as the pre-queue synchronous model:
// the sync Read/Write wrappers (submit + wait) are timing-identical to it.

#ifndef SRC_DISK_SIM_DISK_H_
#define SRC_DISK_SIM_DISK_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/geometry.h"

namespace ld {

class SimDisk : public BlockDevice {
 public:
  // How a scheduled batch is ordered before service.
  enum class QueuePolicy {
    kFifo,   // Submission order.
    kCScan,  // Circular elevator: ascending sector from the arm, then wrap.
  };

  // The clock must outlive the disk. It is shared so that file-system CPU
  // costs and disk service time accumulate on one timeline.
  SimDisk(const DiskGeometry& geometry, SimClock* clock);

  uint32_t sector_size() const override { return geometry_.sector_size; }
  uint64_t num_sectors() const override { return geometry_.TotalSectors(); }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out) override;
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data) override;
  Status WaitFor(IoTag tag) override;
  std::vector<IoCompletion> Poll() override;
  Status Drain() override;

  SimClock* clock() override { return clock_; }
  const DiskStats& stats() const override { return stats_; }
  // Also marks the device idle: measurement resets (harness ResetMeasurement)
  // rewind the shared clock, which would otherwise leave a stale busy-until
  // time delaying every post-reset request.
  void ResetStats() override {
    stats_ = DiskStats{};
    busy_until_seconds_ = 0.0;
  }

  const DiskGeometry& geometry() const { return geometry_; }

  // Scheduling knobs. Depth 1 degenerates to the synchronous model (every
  // request is scheduled as soon as it is submitted).
  void set_queue_policy(QueuePolicy policy) { queue_policy_ = policy; }
  QueuePolicy queue_policy() const { return queue_policy_; }
  void set_queue_depth(uint32_t depth) { queue_depth_ = depth == 0 ? 1 : depth; }
  uint32_t queue_depth() const { return queue_depth_; }

  // Current arm position (cylinder index); exposed for tests.
  uint32_t arm_cylinder() const { return arm_cylinder_; }

  // Completion time of `tag` if it has been scheduled but not yet retired;
  // exposed for tests (returns a negative value for unknown tags).
  double ScheduledCompletion(IoTag tag) const;

 private:
  struct PendingIo {
    IoTag tag;
    uint64_t sector;
    uint64_t count;
    bool is_read;
    double submit_seconds;
  };
  struct DoneIo {
    bool is_read;
    double completion_seconds;
  };

  Status ValidateRequest(uint64_t sector, size_t bytes) const;
  StatusOr<IoTag> Enqueue(uint64_t sector, uint64_t count, bool is_read);

  // Computes the mechanical service of one (possibly merged) transfer that
  // begins no earlier than `start_seconds`, updating arm position, the
  // controller read-ahead window, and timing stats. Returns the completion
  // time in seconds. Never touches the clock.
  double ServiceAt(double start_seconds, uint64_t sector, uint64_t count, bool is_read);

  // Orders, merges, and services every pending request, assigning completion
  // times (moves pending_ entries into completed_). Never touches the clock.
  void ScheduleAll();

  // Angular slot (0..sectors_per_track-1) of an absolute sector, with skew.
  uint32_t AngularSlot(uint64_t sector) const;

  uint8_t* ChunkFor(uint64_t byte_offset, bool allocate);
  void CopyOut(uint64_t sector, std::span<uint8_t> out);
  void CopyIn(uint64_t sector, std::span<const uint8_t> data);

  DiskGeometry geometry_;
  SimClock* clock_;
  DiskStats stats_;

  QueuePolicy queue_policy_ = QueuePolicy::kCScan;
  uint32_t queue_depth_ = 8;
  std::deque<PendingIo> pending_;
  std::unordered_map<IoTag, DoneIo> completed_;
  double busy_until_seconds_ = 0.0;

  uint32_t arm_cylinder_ = 0;
  // Controller read-buffer window [start, end): sectors recently streamed
  // past the head that a sequential reader can fetch without mechanical
  // delay. Invalidated by writes.
  uint64_t read_window_start_ = UINT64_MAX;
  uint64_t read_window_end_ = UINT64_MAX;

  static constexpr uint64_t kChunkBytes = 1 << 20;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
};

}  // namespace ld

#endif  // SRC_DISK_SIM_DISK_H_

// Event-driven simulated disk with the mechanical timing model described in
// src/disk/geometry.h: seeks, head switches, rotational position, track skew,
// and per-request controller overhead. Storage is allocated lazily in 1-MB
// chunks so multi-gigabyte devices can be simulated cheaply.
//
// Requests go through per-channel queues: SubmitRead/SubmitWrite enqueue a
// request (copying its data immediately — the simulator is single-threaded,
// so reads always observe previously submitted writes) and the mechanical
// service time is computed when the request is *scheduled*. The scheduler
// runs whenever a channel's queue reaches the configured depth or the caller
// waits (WaitFor/Drain) or polls; it orders each batch FIFO or C-SCAN and
// merges physically adjacent same-direction requests into one media transfer.
//
// Multi-channel operation models a multi-actuator drive: cylinders are
// statically partitioned into `num_channels` contiguous bands, each with its
// own arm, C-SCAN state, read-ahead window, and busy-until timeline.
// Requests on different channels are serviced concurrently; a request is
// owned entirely by the channel of its *first* sector (transfers straddling a
// band boundary are rare and are serviced by that one arm). With one channel
// the timing model is identical to the single-arm device.
//
// Service start time is max(channel busy-until, submit time), so a single
// outstanding request is timed exactly as the pre-queue synchronous model:
// the sync Read/Write wrappers (submit + wait) are timing-identical to it.

#ifndef SRC_DISK_SIM_DISK_H_
#define SRC_DISK_SIM_DISK_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/chunked_storage.h"
#include "src/disk/geometry.h"

namespace ld {

class SimDisk : public BlockDevice {
 public:
  // The clock must outlive the disk. It is shared so that file-system CPU
  // costs and disk service time accumulate on one timeline.
  SimDisk(const DiskGeometry& geometry, SimClock* clock, uint32_t num_channels = 1);

  uint32_t sector_size() const override { return geometry_.sector_size; }
  uint64_t num_sectors() const override { return geometry_.TotalSectors(); }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out) override;
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data) override;
  Status WaitFor(IoTag tag) override;
  std::vector<IoCompletion> Poll() override;
  Status Drain() override;

  SimClock* clock() override { return clock_; }
  const DiskStats& stats() const override { return stats_; }
  DiskStats* mutable_stats() override { return &stats_; }
  // Also marks every channel idle: measurement resets (harness
  // ResetMeasurement) rewind the shared clock, which would otherwise leave a
  // stale busy-until time delaying every post-reset request.
  void ResetStats() override;

  const DiskGeometry& geometry() const { return geometry_; }

  // Scheduling knobs. Depth 1 degenerates to the synchronous model (every
  // request is scheduled as soon as it is submitted).
  void set_queue_policy(QueuePolicy policy) override { queue_policy_ = policy; }
  QueuePolicy queue_policy() const override { return queue_policy_; }
  void set_queue_depth(uint32_t depth) override { queue_depth_ = depth == 0 ? 1 : depth; }
  uint32_t queue_depth() const override { return queue_depth_; }

  // Tenant context: stamped into each queued request. QoS dispatch (chunked
  // service, weighted-share or deadline ordering between tenants) engages
  // only when qos().Active(); otherwise the legacy batch scheduler runs
  // unchanged and tenants are tracked for accounting only.
  void set_request_tenant(TenantId tenant) override { request_tenant_ = tenant; }
  TenantId request_tenant() const override { return request_tenant_; }
  void set_qos(const QosConfig& config) override { qos_ = config; }
  QosConfig qos() const override { return qos_; }

  uint32_t num_channels() const override {
    return static_cast<uint32_t>(channels_.size());
  }
  uint32_t ChannelOf(uint64_t sector) const override;

  // Current arm position (cylinder index) of `channel`; exposed for tests.
  uint32_t arm_cylinder(uint32_t channel = 0) const {
    return channels_[channel].arm_cylinder;
  }

  // Completion time of `tag` if it has been scheduled but not yet retired;
  // exposed for tests (returns a negative value for unknown tags).
  double ScheduledCompletion(IoTag tag) const override;

 private:
  struct PendingIo {
    IoTag tag;
    uint64_t sector;  // Next unserviced sector (advances under QoS chunking).
    uint64_t count;   // Sectors still to service.
    bool is_read;
    double submit_seconds;
    TenantId tenant = kDefaultTenant;
    uint64_t total_count = 0;    // Original request size in sectors.
    double first_wait_ms = -1.0; // Queue wait, set when service first starts.
  };
  struct DoneIo {
    bool is_read;
    double completion_seconds;
  };
  // One independent actuator: its own queue, arm, read-ahead window, and
  // busy-until timeline over a contiguous band of cylinders.
  struct Channel {
    std::deque<PendingIo> pending;
    double busy_until_seconds = 0.0;
    uint32_t arm_cylinder = 0;
    // Controller read-buffer window [start, end): sectors recently streamed
    // past the head that a sequential reader can fetch without mechanical
    // delay. Invalidated by writes.
    uint64_t read_window_start = UINT64_MAX;
    uint64_t read_window_end = UINT64_MAX;
    // Weighted-fair-queueing virtual time per tenant (QoS dispatch only).
    std::vector<double> vtime;
  };

  Status ValidateRequest(uint64_t sector, size_t bytes) const;
  StatusOr<IoTag> Enqueue(uint64_t sector, uint64_t count, bool is_read);

  // Computes the mechanical service of one (possibly merged) transfer on
  // channel `ch` that begins no earlier than `start_seconds`, updating the
  // channel's arm position and read-ahead window plus timing stats. Returns
  // the completion time in seconds. Never touches the clock.
  double ServiceAt(uint32_t ch, double start_seconds, uint64_t sector, uint64_t count,
                   bool is_read);

  // Orders, merges, and services every pending request on channel `ch`,
  // assigning completion times (moves pending entries into completed_).
  // Never touches the clock.
  void ScheduleChannel(uint32_t ch);
  // QoS dispatch: services requests chunk by chunk in weighted-share or
  // deadline order, committing the channel no further than slice_ms past the
  // current clock so another tenant can preempt between chunks. Requests the
  // slice does not reach stay pending. Never touches the clock.
  void ScheduleChannelQos(uint32_t ch);
  void ScheduleAll();

  // True while `tag` is still in some channel's pending queue (QoS dispatch
  // can leave requests pending across ScheduleAll calls).
  bool IsPendingTag(IoTag tag) const;

  uint64_t TotalPending() const;

  // Angular slot (0..sectors_per_track-1) of an absolute sector, with skew.
  uint32_t AngularSlot(uint64_t sector) const;

  DiskGeometry geometry_;
  SimClock* clock_;
  DiskStats stats_;

  QueuePolicy queue_policy_ = QueuePolicy::kCScan;
  uint32_t queue_depth_ = 8;
  TenantId request_tenant_ = kDefaultTenant;
  QosConfig qos_;
  std::vector<Channel> channels_;
  uint32_t cylinders_per_channel_ = 0;
  std::unordered_map<IoTag, DoneIo> completed_;

  ChunkedStorage storage_;
};

}  // namespace ld

#endif  // SRC_DISK_SIM_DISK_H_

// Event-driven simulated disk with the mechanical timing model described in
// src/disk/geometry.h: seeks, head switches, rotational position, track skew,
// and per-request controller overhead. Storage is allocated lazily in 1-MB
// chunks so multi-gigabyte devices can be simulated cheaply.

#ifndef SRC_DISK_SIM_DISK_H_
#define SRC_DISK_SIM_DISK_H_

#include <memory>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/geometry.h"

namespace ld {

class SimDisk : public BlockDevice {
 public:
  // The clock must outlive the disk. It is shared so that file-system CPU
  // costs and disk service time accumulate on one timeline.
  SimDisk(const DiskGeometry& geometry, SimClock* clock);

  uint32_t sector_size() const override { return geometry_.sector_size; }
  uint64_t num_sectors() const override { return geometry_.TotalSectors(); }

  Status Read(uint64_t sector, std::span<uint8_t> out) override;
  Status Write(uint64_t sector, std::span<const uint8_t> data) override;

  SimClock* clock() override { return clock_; }
  const DiskStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = DiskStats{}; }

  const DiskGeometry& geometry() const { return geometry_; }

  // Current arm position (cylinder index); exposed for tests.
  uint32_t arm_cylinder() const { return arm_cylinder_; }

 private:
  // Validates the request and advances the clock by its service time.
  Status ServiceRequest(uint64_t sector, uint64_t count, bool is_read);

  // Angular slot (0..sectors_per_track-1) of an absolute sector, with skew.
  uint32_t AngularSlot(uint64_t sector) const;

  uint8_t* ChunkFor(uint64_t byte_offset, bool allocate);

  DiskGeometry geometry_;
  SimClock* clock_;
  DiskStats stats_;

  uint32_t arm_cylinder_ = 0;
  // Controller read-buffer window [start, end): sectors recently streamed
  // past the head that a sequential reader can fetch without mechanical
  // delay. Invalidated by writes.
  uint64_t read_window_start_ = UINT64_MAX;
  uint64_t read_window_end_ = UINT64_MAX;

  static constexpr uint64_t kChunkBytes = 1 << 20;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
};

}  // namespace ld

#endif  // SRC_DISK_SIM_DISK_H_

#include "src/disk/mem_disk.h"

#include <cstring>

namespace ld {

MemDisk::MemDisk(uint64_t num_sectors, uint32_t sector_size, SimClock* clock)
    : num_sectors_(num_sectors),
      sector_size_(sector_size),
      clock_(clock),
      storage_(num_sectors * sector_size, 0) {}

Status MemDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  if (out.size() % sector_size_ != 0) {
    return InvalidArgumentError("read size not sector-aligned");
  }
  const uint64_t count = out.size() / sector_size_;
  if (sector + count > num_sectors_) {
    return InvalidArgumentError("read beyond device end");
  }
  std::memcpy(out.data(), storage_.data() + sector * sector_size_, out.size());
  stats_.NoteRequest(tenant_, clock_->Now());
  stats_.read_ops++;
  stats_.sectors_read += count;
  return OkStatus();
}

Status MemDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  if (data.size() % sector_size_ != 0) {
    return InvalidArgumentError("write size not sector-aligned");
  }
  const uint64_t count = data.size() / sector_size_;
  if (sector + count > num_sectors_) {
    return InvalidArgumentError("write beyond device end");
  }
  std::memcpy(storage_.data() + sector * sector_size_, data.data(), data.size());
  stats_.NoteRequest(tenant_, clock_->Now());
  stats_.write_ops++;
  stats_.sectors_written += count;
  stats_.total_bytes_written += count * sector_size_;
  return OkStatus();
}

}  // namespace ld

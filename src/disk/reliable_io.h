// Retry shim between a client (LLD) and a BlockDevice.
//
// Real controllers retry transient failures below the file system; this shim
// plays that role for the simulated stack. Every failed request classified as
// retryable (IO_ERROR — transient faults recover, persistent ones simply
// exhaust the attempts) is retried up to RetryPolicy::max_attempts times with
// capped exponential backoff charged to the device's SimClock, so retry cost
// shows up in benchmark timings. CORRUPTION and argument errors are never
// retried: re-reading a bit-flipped sector returns the same wrong bytes.
//
// Health accounting (retries issued, transient recoveries) lands in the
// device's DiskStats via mutable_stats(). A request that succeeds on the
// first attempt takes the straight-through path with zero added cost.

#ifndef SRC_DISK_RELIABLE_IO_H_
#define SRC_DISK_RELIABLE_IO_H_

#include <cstdint>

#include "src/disk/block_device.h"

namespace ld {

struct RetryPolicy {
  uint32_t max_attempts = 4;          // Total attempts (1 = no retries).
  double initial_backoff_s = 0.5e-3;  // Backoff before the first retry.
  double max_backoff_s = 8e-3;        // Cap; backoff doubles up to this.
};

class ReliableIo {
 public:
  ReliableIo() = default;
  ReliableIo(BlockDevice* device, const RetryPolicy& policy) { Attach(device, policy); }

  void Attach(BlockDevice* device, const RetryPolicy& policy) {
    device_ = device;
    policy_ = policy;
  }

  BlockDevice* device() const { return device_; }
  const RetryPolicy& policy() const { return policy_; }

  Status Read(uint64_t sector, std::span<uint8_t> out);
  Status Write(uint64_t sector, std::span<const uint8_t> data);

  // Submit-side retry for the async path: the submit call itself is where
  // injected faults surface (completions of accepted requests always
  // succeed), so retrying the submit covers the pipelined writers.
  StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out);
  StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data);

 private:
  // True for errors worth retrying.
  static bool Retryable(const Status& s) { return s.code() == ErrorCode::kIoError; }

  // Advances the sim clock for retry attempt `attempt` (1-based) and counts
  // the retry in the device health stats (global and per-channel, attributed
  // to the channel owning the request's first sector).
  void BackoffBeforeRetry(uint32_t attempt, bool is_read, uint64_t sector);
  void CountRecovery();

  BlockDevice* device_ = nullptr;
  RetryPolicy policy_;
};

}  // namespace ld

#endif  // SRC_DISK_RELIABLE_IO_H_

#include "src/disk/nvme_device.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace ld {

NvmeDevice::NvmeDevice(const NvmeConfig& config, SimClock* clock)
    : config_(config),
      clock_(clock),
      num_sectors_(config.capacity_bytes / config.sector_size),
      queue_depth_(config.queue_depth == 0 ? 1 : config.queue_depth),
      storage_(config.capacity_bytes) {}

Status NvmeDevice::ValidateRequest(uint64_t sector, size_t bytes) const {
  if (bytes == 0 || bytes % config_.sector_size != 0) {
    return InvalidArgumentError("request size not sector-aligned");
  }
  const uint64_t count = bytes / config_.sector_size;
  if (sector + count > num_sectors_) {
    return InvalidArgumentError("disk request beyond device end");
  }
  return OkStatus();
}

void NvmeDevice::ScheduleAll() {
  if (pending_.empty()) {
    return;
  }

  // One in-flight transfer in the fluid simulation.
  struct Xfer {
    IoTag tag;
    uint64_t count;
    bool is_read;
    double submit_seconds;
    double arrival_seconds;  // submit + fixed latency
    double remaining_bytes;
    TenantId tenant;
  };
  std::vector<Xfer> arrivals;
  arrivals.reserve(pending_.size());
  for (const PendingIo& p : pending_) {
    const double bytes = static_cast<double>(p.count) * config_.sector_size;
    arrivals.push_back({p.tag, p.count, p.is_read, p.submit_seconds,
                        p.submit_seconds + LatencySeconds(p.is_read), bytes, p.tenant});
  }
  pending_.clear();
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Xfer& a, const Xfer& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });

  const double bps = BytesPerSecond();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kEpsBytes = 1e-6;

  // Weighted sharing only deviates from the equal split when a QoS policy
  // is active with several tenants; otherwise the arithmetic below is kept
  // bit-identical to the original equal-share model.
  const bool weighted = qos_.Active() && qos_.policy == QosPolicy::kWeightedShare;

  // Event loop: advance `t` from arrival to arrival / completion to
  // completion, draining every active transfer at its share of the link
  // bandwidth in between (equal by transfer, or by tenant weight).
  std::vector<Xfer> active;
  std::vector<double> rates;
  size_t next = 0;
  double t = arrivals.front().arrival_seconds;
  while (next < arrivals.size() || !active.empty()) {
    if (active.empty()) {
      t = std::max(t, arrivals[next].arrival_seconds);
      active.push_back(arrivals[next++]);
      continue;
    }
    rates.assign(active.size(), 0.0);
    double next_completion = kInf;
    if (!weighted) {
      const double rate = bps / static_cast<double>(active.size());
      double min_remaining = kInf;
      for (const Xfer& x : active) {
        min_remaining = std::min(min_remaining, x.remaining_bytes);
      }
      next_completion = t + min_remaining / rate;
      for (double& r : rates) {
        r = rate;
      }
    } else {
      // Tenant t's share is bps * w_t / W (W = sum of weights of tenants
      // with active transfers), split equally among its own transfers.
      std::vector<uint64_t> per_tenant(qos_.num_tenants, 0);
      for (const Xfer& x : active) {
        if (x.tenant >= per_tenant.size()) {
          per_tenant.resize(x.tenant + 1, 0);
        }
        per_tenant[x.tenant]++;
      }
      double weight_sum = 0.0;
      for (TenantId tid = 0; tid < per_tenant.size(); ++tid) {
        if (per_tenant[tid] > 0) {
          weight_sum += static_cast<double>(qos_.WeightOf(tid));
        }
      }
      for (size_t i = 0; i < active.size(); ++i) {
        const TenantId tid = active[i].tenant;
        rates[i] = bps * static_cast<double>(qos_.WeightOf(tid)) / weight_sum /
                   static_cast<double>(per_tenant[tid]);
        next_completion = std::min(next_completion, t + active[i].remaining_bytes / rates[i]);
      }
    }
    const double next_arrival =
        next < arrivals.size() ? std::max(arrivals[next].arrival_seconds, t) : kInf;

    const double t2 = std::min(next_completion, next_arrival);
    stats_.busy_ms += (t2 - t) * 1000.0;  // Link active: n >= 1.
    stats_.MutableChannel(0).busy_ms += (t2 - t) * 1000.0;
    for (size_t i = 0; i < active.size(); ++i) {
      active[i].remaining_bytes -= rates[i] * (t2 - t);
    }
    t = t2;

    if (next_completion <= next_arrival) {
      // Retire every transfer that just finished.
      for (auto it = active.begin(); it != active.end();) {
        if (it->remaining_bytes <= kEpsBytes) {
          completed_[it->tag] = {it->is_read, t};
          const double bytes = static_cast<double>(it->count) * config_.sector_size;
          const double unloaded =
              LatencySeconds(it->is_read) + bytes / bps;  // Service time at n == 1.
          const double wait_ms =
              std::max(0.0, (t - it->submit_seconds - unloaded)) * 1000.0;
          stats_.queue_wait_ms += wait_ms;
          stats_.transfer_ms += bytes / bps * 1000.0;
          ChannelStats& cstats = stats_.MutableChannel(0);
          cstats.queue_wait_ms += wait_ms;
          TenantStats& tstats = stats_.MutableTenant(it->tenant);
          tstats.queue_wait_ms += wait_ms;
          tstats.busy_ms += unloaded * 1000.0;
          if (wait_ms > qos_.starvation_threshold_ms) {
            tstats.starved_requests++;
          }
          const double latency_ms = (t - it->submit_seconds) * 1000.0;
          if (it->is_read) {
            stats_.read_ops++;
            stats_.sectors_read += it->count;
            cstats.read_ops++;
            cstats.sectors_read += it->count;
            tstats.read_ops++;
            tstats.sectors_read += it->count;
            tstats.read_latency.Add(latency_ms);
          } else {
            stats_.write_ops++;
            stats_.sectors_written += it->count;
            stats_.total_bytes_written +=
                static_cast<uint64_t>(it->count) * config_.sector_size;
            cstats.write_ops++;
            cstats.sectors_written += it->count;
            tstats.write_ops++;
            tstats.sectors_written += it->count;
            tstats.write_latency.Add(latency_ms);
          }
          it = active.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      active.push_back(arrivals[next++]);
    }
  }
  link_free_seconds_ = std::max(link_free_seconds_, t);
}

StatusOr<IoTag> NvmeDevice::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(ValidateRequest(sector, out.size()));
  storage_.CopyOut(sector * static_cast<uint64_t>(config_.sector_size), out);
  const IoTag tag = NextTag();
  pending_.push_back(
      {tag, out.size() / config_.sector_size, /*is_read=*/true, clock_->Now(), request_tenant_});
  stats_.NoteRequest(request_tenant_, clock_->Now());
  stats_.queued_requests++;
  stats_.MutableChannel(0).queued_requests++;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth, pending_.size());
  if (pending_.size() >= queue_depth_) {
    ScheduleAll();
  }
  return tag;
}

StatusOr<IoTag> NvmeDevice::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(ValidateRequest(sector, data.size()));
  storage_.CopyIn(sector * static_cast<uint64_t>(config_.sector_size), data);
  const IoTag tag = NextTag();
  pending_.push_back(
      {tag, data.size() / config_.sector_size, /*is_read=*/false, clock_->Now(), request_tenant_});
  stats_.NoteRequest(request_tenant_, clock_->Now());
  stats_.queued_requests++;
  stats_.MutableChannel(0).queued_requests++;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth, pending_.size());
  if (pending_.size() >= queue_depth_) {
    ScheduleAll();
  }
  return tag;
}

Status NvmeDevice::WaitFor(IoTag tag) {
  ScheduleAll();
  auto it = completed_.find(tag);
  if (it == completed_.end()) {
    return OkStatus();  // Already retired (e.g. by Drain).
  }
  clock_->AdvanceTo(it->second.completion_seconds);
  completed_.erase(it);
  return OkStatus();
}

std::vector<IoCompletion> NvmeDevice::Poll() {
  ScheduleAll();
  std::vector<IoCompletion> done;
  const double now = clock_->Now();
  for (auto it = completed_.begin(); it != completed_.end();) {
    if (it->second.completion_seconds <= now) {
      done.push_back({it->first, it->second.is_read, it->second.completion_seconds});
      it = completed_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(done.begin(), done.end(), [](const IoCompletion& a, const IoCompletion& b) {
    return a.completion_seconds < b.completion_seconds;
  });
  return done;
}

Status NvmeDevice::Drain() {
  ScheduleAll();
  double last = clock_->Now();
  for (const auto& [tag, done] : completed_) {
    last = std::max(last, done.completion_seconds);
  }
  clock_->AdvanceTo(last);
  completed_.clear();
  return OkStatus();
}

double NvmeDevice::ScheduledCompletion(IoTag tag) const {
  auto it = completed_.find(tag);
  return it == completed_.end() ? -1.0 : it->second.completion_seconds;
}

Status NvmeDevice::Read(uint64_t sector, std::span<uint8_t> out) {
  ASSIGN_OR_RETURN(IoTag tag, SubmitRead(sector, out));
  return WaitFor(tag);
}

Status NvmeDevice::Write(uint64_t sector, std::span<const uint8_t> data) {
  ASSIGN_OR_RETURN(IoTag tag, SubmitWrite(sector, data));
  return WaitFor(tag);
}

}  // namespace ld

#include "src/disk/partition_device.h"

#include <string>
#include <vector>

namespace ld {

PartitionDevice::PartitionDevice(BlockDevice* parent, uint64_t first_sector,
                                 uint64_t num_sectors, TenantId tenant)
    : parent_(parent), first_sector_(first_sector), num_sectors_(num_sectors), tenant_(tenant) {}

Status PartitionDevice::ValidateRange(uint64_t sector, size_t bytes) const {
  const uint32_t ssz = parent_->sector_size();
  if (bytes == 0 || bytes % ssz != 0) {
    return InvalidArgumentError("request size not sector-aligned");
  }
  if (sector + bytes / ssz > num_sectors_) {
    return InvalidArgumentError("request beyond partition end (sector " +
                                std::to_string(sector) + ")");
  }
  return OkStatus();
}

Status PartitionDevice::Read(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(ValidateRange(sector, out.size()));
  parent_->set_request_tenant(tenant_);
  return parent_->Read(first_sector_ + sector, out);
}

Status PartitionDevice::Write(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(ValidateRange(sector, data.size()));
  parent_->set_request_tenant(tenant_);
  return parent_->Write(first_sector_ + sector, data);
}

StatusOr<IoTag> PartitionDevice::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(ValidateRange(sector, out.size()));
  parent_->set_request_tenant(tenant_);
  ASSIGN_OR_RETURN(IoTag tag, parent_->SubmitRead(first_sector_ + sector, out));
  outstanding_.insert(tag);
  return tag;
}

StatusOr<IoTag> PartitionDevice::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(ValidateRange(sector, data.size()));
  parent_->set_request_tenant(tenant_);
  ASSIGN_OR_RETURN(IoTag tag, parent_->SubmitWrite(first_sector_ + sector, data));
  outstanding_.insert(tag);
  return tag;
}

Status PartitionDevice::WaitFor(IoTag tag) {
  outstanding_.erase(tag);
  parent_->set_request_tenant(tenant_);
  return parent_->WaitFor(tag);
}

std::vector<IoCompletion> PartitionDevice::Poll() {
  parent_->set_request_tenant(tenant_);
  std::vector<IoCompletion> all = parent_->Poll();
  std::vector<IoCompletion> own;
  for (const IoCompletion& c : all) {
    if (outstanding_.erase(c.tag) > 0) {
      own.push_back(c);
    }
  }
  return own;
}

Status PartitionDevice::Drain() {
  parent_->set_request_tenant(tenant_);
  // Wait out only this partition's requests; draining the whole parent
  // would drag the clock to other tenants' completions.
  std::vector<IoTag> tags(outstanding_.begin(), outstanding_.end());
  outstanding_.clear();
  for (IoTag tag : tags) {
    RETURN_IF_ERROR(parent_->WaitFor(tag));
  }
  return OkStatus();
}

}  // namespace ld

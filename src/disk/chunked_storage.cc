#include "src/disk/chunked_storage.h"

#include <algorithm>
#include <cstring>

namespace ld {

ChunkedStorage::ChunkedStorage(uint64_t total_bytes) {
  chunks_.resize((total_bytes + kChunkBytes - 1) / kChunkBytes);
}

uint8_t* ChunkedStorage::ChunkFor(uint64_t byte_offset, bool allocate) const {
  const uint64_t index = byte_offset / kChunkBytes;
  if (chunks_[index] == nullptr) {
    if (!allocate) {
      return nullptr;
    }
    chunks_[index] = std::make_unique<uint8_t[]>(kChunkBytes);
    std::memset(chunks_[index].get(), 0, kChunkBytes);
  }
  return chunks_[index].get();
}

void ChunkedStorage::CopyOut(uint64_t byte_offset, std::span<uint8_t> out) const {
  uint64_t byte = byte_offset;
  size_t copied = 0;
  while (copied < out.size()) {
    const uint64_t within = byte % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, out.size() - copied));
    uint8_t* chunk = ChunkFor(byte, /*allocate=*/false);
    if (chunk != nullptr) {
      std::memcpy(out.data() + copied, chunk + within, n);
    } else {
      std::memset(out.data() + copied, 0, n);  // Never-written area reads as zeros.
    }
    copied += n;
    byte += n;
  }
}

void ChunkedStorage::CopyIn(uint64_t byte_offset, std::span<const uint8_t> data) {
  uint64_t byte = byte_offset;
  size_t copied = 0;
  while (copied < data.size()) {
    const uint64_t within = byte % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, data.size() - copied));
    uint8_t* chunk = ChunkFor(byte, /*allocate=*/true);
    std::memcpy(chunk + within, data.data() + copied, n);
    copied += n;
    byte += n;
  }
}

}  // namespace ld

// Disk geometry and mechanical timing parameters.
//
// The default profile models the HP C3010 used in the paper's evaluation:
// SCSI-II, ~2 GB, 5400 rpm, 11.5 ms average seek. The exact zone layout of
// the real drive is unavailable; a single-zone geometry is used, calibrated
// so that the two throughput figures the paper reports for the raw device
// hold: ~2400 KB/s for 0.5-MB sequential writes and ~300 KB/s for
// back-to-back 4-KB writes (which miss a rotation between blocks).

#ifndef SRC_DISK_GEOMETRY_H_
#define SRC_DISK_GEOMETRY_H_

#include <cstdint>

namespace ld {

struct DiskGeometry {
  uint32_t sector_size = 512;       // Bytes per sector.
  uint32_t sectors_per_track = 58;  // Single-zone.
  uint32_t heads = 14;              // Tracks per cylinder.
  uint32_t cylinders = 4930;

  double rpm = 5400.0;

  // Seek time (ms) = seek_base_ms + seek_per_cyl_ms * d + seek_sqrt_ms * sqrt(d)
  // for a d-cylinder move (d > 0). Calibrated to ~11.5 ms average seek.
  double seek_base_ms = 1.5;
  double seek_per_cyl_ms = 0.0035;
  double seek_sqrt_ms = 0.09;

  // Fixed cost to switch heads within a cylinder.
  double head_switch_ms = 1.0;

  // Per-request fixed cost (controller + host). This is what makes
  // back-to-back single-block writes miss a rotation.
  double controller_overhead_ms = 1.0;

  // Sectors of skew between logically consecutive tracks, hiding the head
  // switch on sequential transfers (as real drives do), and the additional
  // skew per cylinder boundary hiding the track-to-track seek.
  uint32_t track_skew = 6;
  uint32_t cylinder_skew = 9;

  // Controller read-ahead buffer: a read starting exactly where the previous
  // read ended is served from the controller's track buffer — no seek and no
  // rotational latency, only per-request overhead and media transfer time.
  // Writes are not buffered (the C3010-era raw path acknowledged writes only
  // when on media, which is what the paper's 300-KB/s back-to-back 4-KB
  // write figure shows).
  bool read_ahead_buffer = true;

  uint64_t TotalSectors() const {
    return static_cast<uint64_t>(sectors_per_track) * heads * cylinders;
  }
  uint64_t CapacityBytes() const { return TotalSectors() * sector_size; }

  double RotationPeriodMs() const { return 60000.0 / rpm; }
  double SectorTimeMs() const { return RotationPeriodMs() / sectors_per_track; }

  // Seek time in milliseconds for a move of `distance` cylinders.
  double SeekTimeMs(uint32_t distance) const;

  // Average seek over uniformly random source/target cylinders (~C/3 apart).
  double AverageSeekMs() const { return SeekTimeMs(cylinders / 3); }

  // The HP C3010 profile used throughout the evaluation.
  static DiskGeometry HpC3010();

  // Same mechanics, fewer cylinders: a partition covering roughly
  // `bytes` of the C3010 (the paper uses a 400-MB partition of the 2-GB disk).
  static DiskGeometry HpC3010Partition(uint64_t bytes);
};

}  // namespace ld

#endif  // SRC_DISK_GEOMETRY_H_

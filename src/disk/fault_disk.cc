#include "src/disk/fault_disk.h"

#include <algorithm>
#include <cstring>

namespace ld {

void FaultDisk::SetFaultPlan(const FaultPlan& plan) {
  plan_ = plan;
  rng_ = Rng(plan.seed);
  read_burst_left_ = 0;
  write_burst_left_ = 0;
  read_cooldown_ = false;
  write_cooldown_ = false;
}

void FaultDisk::CrashAfterWrites(uint64_t n, int64_t torn_sectors) {
  armed_ = true;
  writes_until_crash_ = n;
  torn_sectors_ = torn_sectors;
}

void FaultDisk::ClearFault() {
  crashed_ = false;
  armed_ = false;
  torn_sectors_ = -1;
  // A reboot ends any in-progress transient burst but does not touch
  // latent_sectors_ or stored (corrupted) contents: media damage persists.
  read_burst_left_ = 0;
  write_burst_left_ = 0;
  read_cooldown_ = false;
  write_cooldown_ = false;
}

Status FaultDisk::CorruptSector(uint64_t sector, uint32_t byte_offset, uint8_t xor_mask) {
  if (sector >= num_sectors() || byte_offset >= sector_size() || xor_mask == 0) {
    return InvalidArgumentError("CorruptSector: bad sector/offset/mask");
  }
  // Read-modify-write on the inner device so the damage is physically
  // stored and survives ClearFault().
  scratch_.resize(sector_size());
  RETURN_IF_ERROR(inner_->Read(sector, scratch_));
  scratch_[byte_offset] ^= xor_mask;
  RETURN_IF_ERROR(inner_->Write(sector, scratch_));
  corruptions_injected_++;
  return OkStatus();
}

Status FaultDisk::CountReadError(uint64_t sector, Status s) {
  if (DiskStats* stats = mutable_stats()) {
    stats->read_errors++;
    stats->MutableChannel(inner_->ChannelOf(sector)).read_errors++;
  }
  return s;
}

Status FaultDisk::CountWriteError(uint64_t sector, Status s) {
  if (DiskStats* stats = mutable_stats()) {
    stats->write_errors++;
    stats->MutableChannel(inner_->ChannelOf(sector)).write_errors++;
  }
  return s;
}

int64_t FaultDisk::FailedChannelOf(uint64_t sector, uint64_t sectors) const {
  if (failed_channels_.empty()) {
    return -1;
  }
  // Channels own contiguous sector bands (ChannelOf is monotonic), so a
  // request can only touch channels between its first and last sector's.
  const uint32_t first = inner_->ChannelOf(sector);
  const uint32_t last =
      inner_->ChannelOf(sectors > 0 ? sector + sectors - 1 : sector);
  for (uint32_t ch = first; ch <= last; ++ch) {
    if (failed_channels_.count(ch) != 0) {
      return ch;
    }
  }
  return -1;
}

Status FaultDisk::HealChannel(uint32_t ch) {
  if (ch >= inner_->num_channels()) {
    return InvalidArgumentError("HealChannel: no such channel");
  }
  if (failed_channels_.erase(ch) == 0) {
    // Healing a live channel is a no-op: the spare swap is destructive and
    // must only ever replace a channel that actually died.
    return OkStatus();
  }
  // The heal models swapping in a blank spare: find the channel's sector
  // band (ChannelOf is monotonic over contiguous bands) and zero it on the
  // inner device, bypassing fault checks. Latent errors in the band go with
  // the old platter.
  const uint64_t total = inner_->num_sectors();
  uint64_t lo = 0;
  uint64_t hi = total;
  while (lo < hi) {  // First sector owned by a channel >= ch.
    const uint64_t mid = lo + (hi - lo) / 2;
    if (inner_->ChannelOf(mid) < ch) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint64_t band_begin = lo;
  hi = total;
  while (lo < hi) {  // First sector owned by a channel > ch.
    const uint64_t mid = lo + (hi - lo) / 2;
    if (inner_->ChannelOf(mid) <= ch) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint64_t band_end = lo;
  const uint32_t ss = sector_size();
  const uint64_t chunk = 256;
  scratch_.assign(static_cast<size_t>(chunk) * ss, 0);
  for (uint64_t s = band_begin; s < band_end; s += chunk) {
    const uint64_t n = std::min(chunk, band_end - s);
    RETURN_IF_ERROR(inner_->Write(
        s, std::span<const uint8_t>(scratch_.data(), static_cast<size_t>(n) * ss)));
  }
  for (uint64_t s = band_begin; s < band_end; ++s) {
    latent_sectors_.erase(s);
  }
  return OkStatus();
}

Status FaultDisk::CheckReadFault(uint64_t sector, size_t bytes) {
  if (crashed_) {
    return CountReadError(sector, IoError("device crashed"));
  }
  // A dead channel fails everything touching its band, persistently (like a
  // latent error, it survives ClearFault: a reboot does not revive an arm).
  if (const int64_t ch = FailedChannelOf(sector, bytes / sector_size()); ch >= 0) {
    return CountReadError(
        sector, IoError("channel " + std::to_string(ch) + " failed"));
  }
  // Latent errors are persistent: they dominate transients so that retrying
  // a damaged sector keeps failing.
  if (!latent_sectors_.empty()) {
    const uint64_t sectors = bytes / sector_size();
    for (uint64_t s = sector; s < sector + sectors; ++s) {
      if (latent_sectors_.count(s) != 0) {
        return CountReadError(
            sector, IoError("latent sector error at sector " + std::to_string(s)));
      }
    }
  }
  if (read_burst_left_ > 0) {
    read_burst_left_--;
    read_cooldown_ = read_burst_left_ == 0;
    return CountReadError(sector, IoError("transient read error"));
  }
  if (read_cooldown_) {
    // The request right after a burst may not start a new one: this keeps
    // max_transient_burst a hard bound on consecutive failures.
    read_cooldown_ = false;
    return OkStatus();
  }
  if (plan_.transient_read_error_rate > 0.0 && rng_.Chance(plan_.transient_read_error_rate)) {
    read_burst_left_ =
        static_cast<uint32_t>(rng_.Range(1, plan_.max_transient_burst > 0
                                                ? plan_.max_transient_burst
                                                : 1)) - 1;
    read_cooldown_ = read_burst_left_ == 0;
    return CountReadError(sector, IoError("transient read error"));
  }
  return OkStatus();
}

Status FaultDisk::CheckWriteFault(uint64_t sector, std::span<const uint8_t> data) {
  if (crashed_) {
    return CountWriteError(sector, IoError("device crashed"));
  }
  // A dead-channel write is rejected before it can advance the armed-crash
  // countdown or land anything on media.
  if (const int64_t ch = FailedChannelOf(sector, data.size() / sector_size());
      ch >= 0) {
    return CountWriteError(
        sector, IoError("channel " + std::to_string(ch) + " failed"));
  }
  if (armed_) {
    if (writes_until_crash_ <= 1) {
      crashed_ = true;
      armed_ = false;
      if (torn_sectors_ > 0) {
        const size_t bytes = static_cast<size_t>(torn_sectors_) * sector_size();
        if (bytes < data.size()) {
          // Persist the prefix, then fail the request: a torn write.
          (void)inner_->Write(sector, data.subspan(0, bytes));
        } else {
          (void)inner_->Write(sector, data);
        }
      }
      return CountWriteError(sector, IoError("device crashed during write"));
    }
    writes_until_crash_--;
  }
  // A transient write failure is rejected before anything lands on media.
  if (write_burst_left_ > 0) {
    write_burst_left_--;
    write_cooldown_ = write_burst_left_ == 0;
    return CountWriteError(sector, IoError("transient write error"));
  }
  if (write_cooldown_) {
    write_cooldown_ = false;
    return OkStatus();
  }
  if (plan_.transient_write_error_rate > 0.0 && rng_.Chance(plan_.transient_write_error_rate)) {
    write_burst_left_ =
        static_cast<uint32_t>(rng_.Range(1, plan_.max_transient_burst > 0
                                                ? plan_.max_transient_burst
                                                : 1)) - 1;
    write_cooldown_ = write_burst_left_ == 0;
    return CountWriteError(sector, IoError("transient write error"));
  }
  return OkStatus();
}

void FaultDisk::ApplyWriteEffects(uint64_t sector, std::span<const uint8_t> data) {
  const uint64_t sectors = data.size() / sector_size();
  // Rewriting a sector heals its latent error (firmware remap on write).
  if (!latent_sectors_.empty()) {
    for (uint64_t s = sector; s < sector + sectors; ++s) {
      latent_sectors_.erase(s);
    }
  }
  // ...and may grow a fresh defect somewhere in the written range.
  if (plan_.latent_error_rate > 0.0 && rng_.Chance(plan_.latent_error_rate)) {
    latent_sectors_.insert(sector + rng_.Below(sectors > 0 ? sectors : 1));
  }
}

Status FaultDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(CheckReadFault(sector, out.size()));
  return inner_->Read(sector, out);
}

Status FaultDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(CheckWriteFault(sector, data));
  ApplyWriteEffects(sector, data);
  if (plan_.bit_flip_rate > 0.0) {
    // Decide per sector whether a silent bit flip lands with the data.
    const uint32_t ss = sector_size();
    const uint64_t sectors = data.size() / ss;
    bool flipped = false;
    for (uint64_t i = 0; i < sectors; ++i) {
      if (!rng_.Chance(plan_.bit_flip_rate)) {
        continue;
      }
      if (!flipped) {
        scratch_.assign(data.begin(), data.end());
        flipped = true;
      }
      const size_t byte = i * ss + rng_.Below(ss);
      scratch_[byte] ^= static_cast<uint8_t>(1u << rng_.Below(8));
      corruptions_injected_++;
    }
    if (flipped) {
      return inner_->Write(sector, scratch_);
    }
  }
  return inner_->Write(sector, data);
}

StatusOr<IoTag> FaultDisk::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(CheckReadFault(sector, out.size()));
  return inner_->SubmitRead(sector, out);
}

StatusOr<IoTag> FaultDisk::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(CheckWriteFault(sector, data));
  ApplyWriteEffects(sector, data);
  if (plan_.bit_flip_rate > 0.0) {
    const uint32_t ss = sector_size();
    const uint64_t sectors = data.size() / ss;
    bool flipped = false;
    for (uint64_t i = 0; i < sectors; ++i) {
      if (!rng_.Chance(plan_.bit_flip_rate)) {
        continue;
      }
      if (!flipped) {
        scratch_.assign(data.begin(), data.end());
        flipped = true;
      }
      const size_t byte = i * ss + rng_.Below(ss);
      scratch_[byte] ^= static_cast<uint8_t>(1u << rng_.Below(8));
      corruptions_injected_++;
    }
    if (flipped) {
      // Data effects are applied eagerly at submit time, so the corrupted
      // image must land through the same submit call.
      return inner_->SubmitWrite(sector, scratch_);
    }
  }
  return inner_->SubmitWrite(sector, data);
}

}  // namespace ld

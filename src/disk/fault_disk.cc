#include "src/disk/fault_disk.h"

namespace ld {

void FaultDisk::CrashAfterWrites(uint64_t n, int64_t torn_sectors) {
  armed_ = true;
  writes_until_crash_ = n;
  torn_sectors_ = torn_sectors;
}

void FaultDisk::ClearFault() {
  crashed_ = false;
  armed_ = false;
  torn_sectors_ = -1;
}

Status FaultDisk::CheckWriteFault(uint64_t sector, std::span<const uint8_t> data) {
  if (crashed_) {
    return IoError("device crashed");
  }
  if (armed_) {
    if (writes_until_crash_ <= 1) {
      crashed_ = true;
      armed_ = false;
      if (torn_sectors_ > 0) {
        const size_t bytes = static_cast<size_t>(torn_sectors_) * sector_size();
        if (bytes < data.size()) {
          // Persist the prefix, then fail the request: a torn write.
          (void)inner_->Write(sector, data.subspan(0, bytes));
        } else {
          (void)inner_->Write(sector, data);
        }
      }
      return IoError("device crashed during write");
    }
    writes_until_crash_--;
  }
  return OkStatus();
}

Status FaultDisk::Read(uint64_t sector, std::span<uint8_t> out) {
  if (crashed_) {
    return IoError("device crashed");
  }
  return inner_->Read(sector, out);
}

Status FaultDisk::Write(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(CheckWriteFault(sector, data));
  return inner_->Write(sector, data);
}

StatusOr<IoTag> FaultDisk::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  if (crashed_) {
    return IoError("device crashed");
  }
  return inner_->SubmitRead(sector, out);
}

StatusOr<IoTag> FaultDisk::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(CheckWriteFault(sector, data));
  return inner_->SubmitWrite(sector, data);
}

}  // namespace ld

// The raw device interface every LD implementation sits on.
//
// A BlockDevice transfers whole runs of contiguous sectors in one request.
// Two access styles are offered:
//
//  * Synchronous Read/Write: submit one request and block until it completes
//    (the shared SimClock is advanced by the full service time).
//  * Asynchronous SubmitRead/SubmitWrite + WaitFor/Poll/Drain: requests are
//    tagged and queued; the caller may keep doing CPU work (advancing the
//    clock) while requests are "in flight", and only waits — advancing the
//    clock to the request's simulated completion time — when it needs the
//    result to be durable. Because the simulator is single-threaded, data
//    effects are applied eagerly at submit time (reads observe all previously
//    submitted writes); only the *timing* is deferred.
//
// The synchronous calls are exactly submit + wait, so both styles charge
// identical service time for a single outstanding request.
//
// Devices may expose multiple independent *channels* (actuators on a
// multi-arm disk, flash channels on an SSD). Sector ranges are statically
// partitioned across channels; requests on different channels are serviced
// concurrently. ChannelOf() reveals the static mapping so log-structured
// layers can place data to exploit the parallelism.

#ifndef SRC_DISK_BLOCK_DEVICE_H_
#define SRC_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/disk/clock.h"
#include "src/disk/qos.h"
#include "src/util/status.h"

namespace ld {

// Identifies one queued request; unique per device for the device's lifetime.
using IoTag = uint64_t;
inline constexpr IoTag kInvalidIoTag = 0;

// How a queueing device orders each scheduled batch before service.
// Devices without a mechanical arm may ignore the policy.
enum class QueuePolicy {
  kFifo,   // Submission order.
  kCScan,  // Circular elevator: ascending sector from the arm, then wrap.
};

// Reported by Poll(): a request that has (logically) finished.
struct IoCompletion {
  IoTag tag = kInvalidIoTag;
  bool is_read = false;
  // Simulated time at which the device finished servicing the request.
  double completion_seconds = 0.0;
};

// Per-channel activity breakdown. Devices with one channel still populate
// channel 0 if they track channels at all; devices that don't leave the
// vector empty and DiskStats::channel() returns zeros.
struct ChannelStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  double busy_ms = 0.0;          // Channel service time (incl. overhead).
  double queue_wait_ms = 0.0;    // Time requests waited on this channel.
  uint64_t queued_requests = 0;  // Requests routed to this channel.

  // Channel health: failures counted by the fault wrapper and extra attempts
  // issued by the ReliableIo shim, attributed to the channel owning the
  // request's first sector. A dead channel shows up as a column of errors.
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
};

// Cumulative counters a device keeps about its own activity.
struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;            // Requests that moved the arm.
  double seek_ms = 0.0;          // Total time spent seeking.
  double rotation_ms = 0.0;      // Total rotational latency.
  double transfer_ms = 0.0;      // Total media transfer time.
  double busy_ms = 0.0;          // Total service time (incl. overhead).

  // Request-queue behaviour (devices without a queue leave these at zero).
  uint64_t queued_requests = 0;  // Requests that passed through the queue.
  uint64_t merged_requests = 0;  // Requests coalesced into a neighbour.
  uint64_t max_queue_depth = 0;  // High-water mark of outstanding requests.
  double queue_wait_ms = 0.0;    // Total time requests waited before service.

  // Device health. The error counters are bumped by the device (or a fault
  // wrapper) when a request fails; the retry/recovery counters are bumped by
  // the ReliableIo shim that sits between a client and the device.
  uint64_t read_errors = 0;          // Read requests that failed.
  uint64_t write_errors = 0;         // Write requests that failed.
  uint64_t read_retries = 0;         // Extra read attempts issued by the shim.
  uint64_t write_retries = 0;        // Extra write attempts issued by the shim.
  uint64_t transient_recoveries = 0; // Requests that succeeded after retrying.

  // Cross-channel stripe parity (LLD stripe-parity mode). Degraded reads are
  // block reads served by XOR across the N-1 surviving stripe peers after
  // both the direct read and the per-segment parity lane failed; rebuild
  // counters track Lld::Rebuild re-materializing a lost channel's segments.
  uint64_t degraded_reads = 0;          // Blocks served via stripe peers.
  uint64_t stripe_reconstructions = 0;  // Segment images rebuilt from peers.
  uint64_t rebuild_segments_done = 0;   // Segments re-materialized by Rebuild.
  uint64_t rebuild_segments_pending = 0;  // Segments still queued for rebuild.

  // Checkpoint payloads that outgrew their reserved A/B slot and were
  // skipped (typed NO_SPACE surfaced by the LD above this device; the next
  // open falls back to log recovery instead of silently losing coverage).
  uint64_t checkpoints_skipped_oversize = 0;

  // --- Write amplification & wear ------------------------------------------
  //
  // total_bytes_written is every byte the media absorbed — segment data,
  // summaries, cleaner copies, parity images, checkpoint frames — maintained
  // by the device alongside sectors_written. user_bytes_written is the
  // logical payload the LD layer accepted from clients, mirrored down (like
  // the buffer-cache counters above) so Waf() — the write amplification
  // factor a flash translation layer would report — reads off one struct.
  // Note Waf() can dip below 1 legitimately: compression shrinks the stored
  // form, NVRAM absorbs partial flushes, and user bytes sit in the open
  // segment until a seal; the WAF property tests pin those knobs off and
  // flush first.
  uint64_t user_bytes_written = 0;
  uint64_t total_bytes_written = 0;
  double Waf() const {
    return user_bytes_written == 0
               ? 0.0
               : static_cast<double>(total_bytes_written) / static_cast<double>(user_bytes_written);
  }

  // Per-segment erase/rewrite wear, mirrored by the LD layer: every full or
  // partial segment-image program moves that segment up one wear count.
  // wear_histogram[i] counts segments currently at wear i+1 (the last bucket
  // absorbs everything >= kWearBuckets), so the weighted bucket sum equals
  // segment_writes_total while no segment has overflowed the last bucket.
  // Session-scoped like the LD's own wear field: an LD (re)open resets them.
  static constexpr size_t kWearBuckets = 16;
  uint64_t segment_writes_total = 0;  // Sum of all segments' wear counts.
  uint64_t segment_wear_max = 0;      // Highest single segment wear count.
  uint64_t wear_histogram[kWearBuckets] = {};
  void NoteSegmentWear(uint32_t new_wear) {
    auto bucket = [](uint32_t w) {
      return static_cast<size_t>(w) > kWearBuckets ? kWearBuckets - 1
                                                   : static_cast<size_t>(w) - 1;
    };
    if (new_wear > 1 && wear_histogram[bucket(new_wear - 1)] > 0) {
      wear_histogram[bucket(new_wear - 1)]--;
    }
    if (new_wear > 0) {
      wear_histogram[bucket(new_wear)]++;
      segment_writes_total++;
      if (new_wear > segment_wear_max) {
        segment_wear_max = new_wear;
      }
    }
  }
  void ResetWearAccounting() {
    segment_writes_total = 0;
    segment_wear_max = 0;
    for (size_t i = 0; i < kWearBuckets; ++i) {
      wear_histogram[i] = 0;
    }
  }

  // Buffer-cache behaviour of the file system mounted on this device
  // (mirrored here by the cache via BufferCache::AttachDeviceStats so device
  // reports show how much work the cache absorbed before it reached the
  // queue; devices without a mounted file system leave these at zero).
  uint64_t cache_hits = 0;        // Lookups served from a cached block.
  uint64_t cache_misses = 0;      // Lookups that had to read the device.
  uint64_t prefetch_hits = 0;     // Lookups served by a read-ahead fill.
  uint64_t prefetch_wasted = 0;   // Read-ahead fills dropped unreferenced.

  // --- Idle / maintenance signal -------------------------------------------
  //
  // Devices stamp every request they accept through NoteRequest(), splitting
  // the activity clock between foreground traffic and the registered
  // maintenance tenant. The background MaintenanceScheduler registers its
  // tenant id here and gates its slices on IdleSeconds() — maintenance's own
  // I/O keeps a separate clock so a scrub slice does not reset the idle
  // detector it is gated on. Timestamps are simulated seconds; -1 = never.
  TenantId maintenance_tenant = kNoMaintenanceTenant;
  double last_foreground_submit_s = -1.0;
  double last_maintenance_submit_s = -1.0;
  uint64_t foreground_requests = 0;
  uint64_t maintenance_requests = 0;

  void NoteRequest(TenantId tenant, double now_seconds) {
    if (maintenance_tenant != kNoMaintenanceTenant && tenant == maintenance_tenant) {
      last_maintenance_submit_s = now_seconds;
      maintenance_requests++;
    } else {
      last_foreground_submit_s = now_seconds;
      foreground_requests++;
    }
  }
  // Seconds since the last foreground request (all of `now` if none ever).
  double IdleSeconds(double now_seconds) const {
    return last_foreground_submit_s < 0.0 ? now_seconds
                                          : now_seconds - last_foreground_submit_s;
  }

  uint64_t TotalOps() const { return read_ops + write_ops; }
  uint64_t BytesRead(uint32_t sector_size) const { return sectors_read * sector_size; }
  uint64_t BytesWritten(uint32_t sector_size) const { return sectors_written * sector_size; }

  // --- Per-channel breakdown (stable accessor) -----------------------------
  //
  // Access goes through channel() rather than a public vector so single-
  // channel devices (and old consumers) need no changes: out-of-range
  // indices read as all-zero.
  size_t channel_count() const { return channels_.size(); }
  const ChannelStats& channel(size_t i) const;
  // For devices: grows the vector on demand.
  ChannelStats& MutableChannel(size_t i);

  // --- Per-tenant breakdown (same accessor pattern) ------------------------
  //
  // Queueing devices account every request to the tenant that submitted it
  // (see BlockDevice::set_request_tenant). Single-tenant runs put everything
  // under kDefaultTenant; out-of-range indices read as all-zero.
  size_t tenant_count() const { return tenants_.size(); }
  const TenantStats& tenant(size_t i) const;
  TenantStats& MutableTenant(size_t i);

 private:
  std::vector<ChannelStats> channels_;
  std::vector<TenantStats> tenants_;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t sector_size() const = 0;
  virtual uint64_t num_sectors() const = 0;
  uint64_t capacity_bytes() const { return num_sectors() * sector_size(); }

  // Reads `out.size()` bytes starting at `sector`. out.size() must be a
  // multiple of the sector size.
  virtual Status Read(uint64_t sector, std::span<uint8_t> out) = 0;

  // Writes `data.size()` bytes starting at `sector`; same size constraint.
  virtual Status Write(uint64_t sector, std::span<const uint8_t> data) = 0;

  // --- Asynchronous request queue ------------------------------------------
  //
  // Submit* validates the request, applies its data effect immediately, and
  // enqueues its timing. Errors that a synchronous call would return (bad
  // alignment, out of range, injected device crash) are returned from Submit*
  // itself; a returned tag's eventual completion is always successful.
  //
  // The default implementations service each request synchronously at submit
  // time, so simple devices (MemDisk) and wrappers get the async API for
  // free; queueing devices (SimDisk, NvmeDevice) override all five methods.

  virtual StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out);
  virtual StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data);

  // Blocks until `tag` completes, advancing the clock to its completion time.
  // Waiting on a tag that already completed (e.g. consumed by Drain) is a
  // no-op returning OK.
  virtual Status WaitFor(IoTag tag);

  // Returns (and retires) completions whose completion time is <= Now().
  // Never advances the clock.
  virtual std::vector<IoCompletion> Poll();

  // Blocks until every outstanding request completes, advancing the clock to
  // the last completion time.
  virtual Status Drain();

  // --- Scheduling knobs ----------------------------------------------------
  //
  // Defaults are no-ops so benches and tests can A/B any backend without
  // downcasting; queueing devices override them. queue_depth() == 1 means
  // every request is scheduled as soon as it is submitted (the synchronous
  // model).

  virtual void set_queue_policy(QueuePolicy /*policy*/) {}
  virtual QueuePolicy queue_policy() const { return QueuePolicy::kFifo; }
  virtual void set_queue_depth(uint32_t /*depth*/) {}
  virtual uint32_t queue_depth() const { return 1; }

  // --- Tenant context / QoS ------------------------------------------------
  //
  // The simulator is single-threaded, so the tenant id is sticky per-device
  // request context rather than a per-call argument: a session sets it before
  // issuing I/O (PartitionDevice re-asserts it on every forwarded call) and
  // the device stamps it into each queued request. Defaults are no-ops so
  // non-queueing devices and old consumers need no changes.

  virtual void set_request_tenant(TenantId /*tenant*/) {}
  virtual TenantId request_tenant() const { return kDefaultTenant; }

  // Dispatch policy between tenants. Only consulted by queueing devices, and
  // only deviates from the legacy schedule when config.Active() (more than
  // one tenant): QoS is a between-tenants policy, so single-tenant runs are
  // byte-identical with or without it.
  virtual void set_qos(const QosConfig& /*config*/) {}
  virtual QosConfig qos() const { return QosConfig{}; }

  // --- Channel topology ----------------------------------------------------

  // Number of independent channels/actuators. Requests on distinct channels
  // proceed concurrently; requests on the same channel serialize.
  virtual uint32_t num_channels() const { return 1; }

  // The channel that statically owns `sector`. Stable for the device's
  // lifetime; log-structured layers use it for placement.
  virtual uint32_t ChannelOf(uint64_t /*sector*/) const { return 0; }

  // Completion time of `tag` if it has been scheduled but not yet retired;
  // negative for unknown/unsupported. Exposed for tests.
  virtual double ScheduledCompletion(IoTag /*tag*/) const { return -1.0; }

  virtual SimClock* clock() = 0;
  virtual const DiskStats& stats() const = 0;
  virtual void ResetStats() = 0;

  // Mutable view of stats() for layers stacked on top of the device (fault
  // wrappers counting errors, the ReliableIo retry shim). Devices that track
  // stats return their own struct; wrappers forward to the wrapped device.
  virtual DiskStats* mutable_stats() { return nullptr; }

 protected:
  // State backing the default (synchronous) Submit* implementations.
  IoTag NextTag() { return next_tag_++; }

 private:
  IoTag next_tag_ = 1;
  std::vector<IoCompletion> sync_completions_;
};

}  // namespace ld

#endif  // SRC_DISK_BLOCK_DEVICE_H_

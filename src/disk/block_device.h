// The raw device interface every LD implementation sits on.
//
// A BlockDevice transfers whole runs of contiguous sectors in one request.
// Two access styles are offered:
//
//  * Synchronous Read/Write: submit one request and block until it completes
//    (the shared SimClock is advanced by the full service time).
//  * Asynchronous SubmitRead/SubmitWrite + WaitFor/Poll/Drain: requests are
//    tagged and queued; the caller may keep doing CPU work (advancing the
//    clock) while requests are "in flight", and only waits — advancing the
//    clock to the request's simulated completion time — when it needs the
//    result to be durable. Because the simulator is single-threaded, data
//    effects are applied eagerly at submit time (reads observe all previously
//    submitted writes); only the *timing* is deferred.
//
// The synchronous calls are exactly submit + wait, so both styles charge
// identical service time for a single outstanding request.

#ifndef SRC_DISK_BLOCK_DEVICE_H_
#define SRC_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/disk/clock.h"
#include "src/util/status.h"

namespace ld {

// Identifies one queued request; unique per device for the device's lifetime.
using IoTag = uint64_t;
inline constexpr IoTag kInvalidIoTag = 0;

// Reported by Poll(): a request that has (logically) finished.
struct IoCompletion {
  IoTag tag = kInvalidIoTag;
  bool is_read = false;
  // Simulated time at which the device finished servicing the request.
  double completion_seconds = 0.0;
};

// Cumulative counters a device keeps about its own activity.
struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;            // Requests that moved the arm.
  double seek_ms = 0.0;          // Total time spent seeking.
  double rotation_ms = 0.0;      // Total rotational latency.
  double transfer_ms = 0.0;      // Total media transfer time.
  double busy_ms = 0.0;          // Total service time (incl. overhead).

  // Request-queue behaviour (devices without a queue leave these at zero).
  uint64_t queued_requests = 0;  // Requests that passed through the queue.
  uint64_t merged_requests = 0;  // Requests coalesced into a neighbour.
  uint64_t max_queue_depth = 0;  // High-water mark of outstanding requests.
  double queue_wait_ms = 0.0;    // Total time requests waited before service.

  uint64_t TotalOps() const { return read_ops + write_ops; }
  uint64_t BytesRead(uint32_t sector_size) const { return sectors_read * sector_size; }
  uint64_t BytesWritten(uint32_t sector_size) const { return sectors_written * sector_size; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t sector_size() const = 0;
  virtual uint64_t num_sectors() const = 0;
  uint64_t capacity_bytes() const { return num_sectors() * sector_size(); }

  // Reads `out.size()` bytes starting at `sector`. out.size() must be a
  // multiple of the sector size.
  virtual Status Read(uint64_t sector, std::span<uint8_t> out) = 0;

  // Writes `data.size()` bytes starting at `sector`; same size constraint.
  virtual Status Write(uint64_t sector, std::span<const uint8_t> data) = 0;

  // --- Asynchronous request queue ------------------------------------------
  //
  // Submit* validates the request, applies its data effect immediately, and
  // enqueues its timing. Errors that a synchronous call would return (bad
  // alignment, out of range, injected device crash) are returned from Submit*
  // itself; a returned tag's eventual completion is always successful.
  //
  // The default implementations service each request synchronously at submit
  // time, so simple devices (MemDisk) and wrappers get the async API for
  // free; queueing devices (SimDisk) override all five methods.

  virtual StatusOr<IoTag> SubmitRead(uint64_t sector, std::span<uint8_t> out);
  virtual StatusOr<IoTag> SubmitWrite(uint64_t sector, std::span<const uint8_t> data);

  // Blocks until `tag` completes, advancing the clock to its completion time.
  // Waiting on a tag that already completed (e.g. consumed by Drain) is a
  // no-op returning OK.
  virtual Status WaitFor(IoTag tag);

  // Returns (and retires) completions whose completion time is <= Now().
  // Never advances the clock.
  virtual std::vector<IoCompletion> Poll();

  // Blocks until every outstanding request completes, advancing the clock to
  // the last completion time.
  virtual Status Drain();

  virtual SimClock* clock() = 0;
  virtual const DiskStats& stats() const = 0;
  virtual void ResetStats() = 0;

 protected:
  // State backing the default (synchronous) Submit* implementations.
  IoTag NextTag() { return next_tag_++; }

 private:
  IoTag next_tag_ = 1;
  std::vector<IoCompletion> sync_completions_;
};

}  // namespace ld

#endif  // SRC_DISK_BLOCK_DEVICE_H_

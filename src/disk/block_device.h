// The raw device interface every LD implementation sits on.
//
// A BlockDevice transfers whole runs of contiguous sectors in one request;
// timing (if any) is charged to the shared SimClock by the implementation.

#ifndef SRC_DISK_BLOCK_DEVICE_H_
#define SRC_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>

#include "src/disk/clock.h"
#include "src/util/status.h"

namespace ld {

// Cumulative counters a device keeps about its own activity.
struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;            // Requests that moved the arm.
  double seek_ms = 0.0;          // Total time spent seeking.
  double rotation_ms = 0.0;      // Total rotational latency.
  double transfer_ms = 0.0;      // Total media transfer time.
  double busy_ms = 0.0;          // Total service time (incl. overhead).

  uint64_t TotalOps() const { return read_ops + write_ops; }
  uint64_t BytesRead(uint32_t sector_size) const { return sectors_read * sector_size; }
  uint64_t BytesWritten(uint32_t sector_size) const { return sectors_written * sector_size; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t sector_size() const = 0;
  virtual uint64_t num_sectors() const = 0;
  uint64_t capacity_bytes() const { return num_sectors() * sector_size(); }

  // Reads `out.size()` bytes starting at `sector`. out.size() must be a
  // multiple of the sector size.
  virtual Status Read(uint64_t sector, std::span<uint8_t> out) = 0;

  // Writes `data.size()` bytes starting at `sector`; same size constraint.
  virtual Status Write(uint64_t sector, std::span<const uint8_t> data) = 0;

  virtual SimClock* clock() = 0;
  virtual const DiskStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace ld

#endif  // SRC_DISK_BLOCK_DEVICE_H_

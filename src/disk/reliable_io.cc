#include "src/disk/reliable_io.h"

namespace ld {

void ReliableIo::BackoffBeforeRetry(uint32_t attempt, bool is_read, uint64_t sector) {
  double backoff = policy_.initial_backoff_s;
  for (uint32_t i = 1; i < attempt; ++i) {
    backoff *= 2.0;
    if (backoff >= policy_.max_backoff_s) {
      backoff = policy_.max_backoff_s;
      break;
    }
  }
  if (SimClock* clock = device_->clock()) {
    clock->Advance(backoff);
  }
  if (DiskStats* stats = device_->mutable_stats()) {
    (is_read ? stats->read_retries : stats->write_retries)++;
    ChannelStats& ch = stats->MutableChannel(device_->ChannelOf(sector));
    (is_read ? ch.read_retries : ch.write_retries)++;
  }
}

void ReliableIo::CountRecovery() {
  if (DiskStats* stats = device_->mutable_stats()) {
    stats->transient_recoveries++;
  }
}

Status ReliableIo::Read(uint64_t sector, std::span<uint8_t> out) {
  Status s = device_->Read(sector, out);
  for (uint32_t attempt = 1; !s.ok() && Retryable(s) && attempt < policy_.max_attempts;
       ++attempt) {
    BackoffBeforeRetry(attempt, /*is_read=*/true, sector);
    s = device_->Read(sector, out);
    if (s.ok()) {
      CountRecovery();
    }
  }
  return s;
}

Status ReliableIo::Write(uint64_t sector, std::span<const uint8_t> data) {
  Status s = device_->Write(sector, data);
  for (uint32_t attempt = 1; !s.ok() && Retryable(s) && attempt < policy_.max_attempts;
       ++attempt) {
    BackoffBeforeRetry(attempt, /*is_read=*/false, sector);
    s = device_->Write(sector, data);
    if (s.ok()) {
      CountRecovery();
    }
  }
  return s;
}

StatusOr<IoTag> ReliableIo::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  StatusOr<IoTag> r = device_->SubmitRead(sector, out);
  for (uint32_t attempt = 1;
       !r.ok() && Retryable(r.status()) && attempt < policy_.max_attempts; ++attempt) {
    BackoffBeforeRetry(attempt, /*is_read=*/true, sector);
    r = device_->SubmitRead(sector, out);
    if (r.ok()) {
      CountRecovery();
    }
  }
  return r;
}

StatusOr<IoTag> ReliableIo::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  StatusOr<IoTag> r = device_->SubmitWrite(sector, data);
  for (uint32_t attempt = 1;
       !r.ok() && Retryable(r.status()) && attempt < policy_.max_attempts; ++attempt) {
    BackoffBeforeRetry(attempt, /*is_read=*/false, sector);
    r = device_->SubmitWrite(sector, data);
    if (r.ok()) {
      CountRecovery();
    }
  }
  return r;
}

}  // namespace ld

#include "src/disk/block_device.h"

#include <algorithm>

namespace ld {

const ChannelStats& DiskStats::channel(size_t i) const {
  static const ChannelStats kZero{};
  return i < channels_.size() ? channels_[i] : kZero;
}

ChannelStats& DiskStats::MutableChannel(size_t i) {
  if (i >= channels_.size()) {
    channels_.resize(i + 1);
  }
  return channels_[i];
}

const TenantStats& DiskStats::tenant(size_t i) const {
  static const TenantStats kZero{};
  return i < tenants_.size() ? tenants_[i] : kZero;
}

TenantStats& DiskStats::MutableTenant(size_t i) {
  if (i >= tenants_.size()) {
    tenants_.resize(i + 1);
  }
  return tenants_[i];
}

// Default async implementations: service the request synchronously at submit
// time and remember the completion so WaitFor/Poll/Drain behave uniformly.
// Devices with a real queue (SimDisk) override these.

StatusOr<IoTag> BlockDevice::SubmitRead(uint64_t sector, std::span<uint8_t> out) {
  RETURN_IF_ERROR(Read(sector, out));
  const IoTag tag = NextTag();
  sync_completions_.push_back({tag, /*is_read=*/true, clock()->Now()});
  return tag;
}

StatusOr<IoTag> BlockDevice::SubmitWrite(uint64_t sector, std::span<const uint8_t> data) {
  RETURN_IF_ERROR(Write(sector, data));
  const IoTag tag = NextTag();
  sync_completions_.push_back({tag, /*is_read=*/false, clock()->Now()});
  return tag;
}

Status BlockDevice::WaitFor(IoTag tag) {
  auto it = std::find_if(sync_completions_.begin(), sync_completions_.end(),
                         [tag](const IoCompletion& c) { return c.tag == tag; });
  if (it != sync_completions_.end()) {
    clock()->AdvanceTo(it->completion_seconds);
    sync_completions_.erase(it);
  }
  return OkStatus();
}

std::vector<IoCompletion> BlockDevice::Poll() {
  std::vector<IoCompletion> done;
  done.swap(sync_completions_);
  return done;
}

Status BlockDevice::Drain() {
  for (const IoCompletion& c : sync_completions_) {
    clock()->AdvanceTo(c.completion_seconds);
  }
  sync_completions_.clear();
  return OkStatus();
}

}  // namespace ld

#include "src/disk/device_factory.h"

#include "src/disk/mem_disk.h"
#include "src/disk/sim_disk.h"

namespace ld {

DeviceOptions DeviceOptions::HpC3010(uint64_t partition_bytes, uint32_t channels) {
  DeviceOptions options;
  options.backend = DeviceBackend::kHpC3010;
  options.geometry = DiskGeometry::HpC3010Partition(partition_bytes);
  options.channels = channels;
  return options;
}

DeviceOptions DeviceOptions::Nvme(uint64_t capacity_bytes) {
  DeviceOptions options;
  options.backend = DeviceBackend::kNvme;
  options.nvme.capacity_bytes = capacity_bytes;
  return options;
}

DeviceOptions DeviceOptions::Mem(uint64_t num_sectors, uint32_t sector_size) {
  DeviceOptions options;
  options.backend = DeviceBackend::kMem;
  options.mem_num_sectors = num_sectors;
  options.mem_sector_size = sector_size;
  return options;
}

std::unique_ptr<BlockDevice> MakeDevice(const DeviceOptions& options, SimClock* clock) {
  std::unique_ptr<BlockDevice> device;
  switch (options.backend) {
    case DeviceBackend::kHpC3010:
      device = std::make_unique<SimDisk>(options.geometry, clock, options.channels);
      break;
    case DeviceBackend::kNvme: {
      NvmeConfig config = options.nvme;
      if (config.capacity_bytes == 0) {
        config.capacity_bytes = options.geometry.CapacityBytes();
      }
      device = std::make_unique<NvmeDevice>(config, clock);
      break;
    }
    case DeviceBackend::kMem:
      device = std::make_unique<MemDisk>(options.mem_num_sectors, options.mem_sector_size,
                                         clock);
      break;
  }
  device->set_queue_policy(options.queue_policy);
  if (options.queue_depth != 0) {
    device->set_queue_depth(options.queue_depth);
  }
  device->set_qos(options.qos);
  return device;
}

}  // namespace ld

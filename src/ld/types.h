// Core identifier types and constants of the Logical Disk interface.
//
// File systems name blocks by logical block number (Bid) and express
// relationships between blocks with ordered lists (Lid). LD owns the mapping
// from logical names to physical locations (paper §2.1).

#ifndef SRC_LD_TYPES_H_
#define SRC_LD_TYPES_H_

#include <cstdint>

namespace ld {

// Logical block identifier. 0 is reserved (kNilBid); valid Bids start at 1,
// which also provides the "special value" Table 1 uses to mean "insert at
// the beginning of the list".
using Bid = uint32_t;
constexpr Bid kNilBid = 0;
// PredBid value meaning "insert as the first block of the list".
constexpr Bid kBeginOfList = 0;

// List identifier; same conventions.
using Lid = uint32_t;
constexpr Lid kNilLid = 0;
// PredLid value meaning "insert at the beginning of the list of lists".
constexpr Lid kBeginOfListOfLists = 0;

// Hints passed to NewList (paper Table 1): whether the list's blocks should
// be physically clustered, whether they should be compressed, and whether
// the list itself should be placed near its predecessor in the list of lists.
struct ListHints {
  bool cluster = true;
  bool compress = false;
  bool interlist_cluster = true;
};

// Kinds of failure Flush must make the preceding operations survive
// (paper Table 1's FailureSet). A log-structured implementation treats both
// the same way — force the current segment to disk — but the interface keeps
// the distinction so other implementations can do less work for kNone.
enum class FailureSet {
  kNone = 0,        // No durability required (barrier only).
  kPowerFailure,    // Survive power loss / crash.
  kMediaFailure,    // Survive media failure too (not supported by LLD).
};

// Logical timestamp attached to every logged operation; a monotonically
// increasing operation counter, not wall-clock time.
using OpTimestamp = uint64_t;

}  // namespace ld

#endif  // SRC_LD_TYPES_H_

// The Logical Disk interface (paper §2.2, Table 1).
//
// LD separates file management from disk management: a file system addresses
// blocks by logical block number and describes inter-block relationships
// with ordered lists; the LD implementation chooses (and may change) the
// physical locations. The interface also provides atomic recovery units and
// multiple block sizes.
//
// Two implementations exist in this repository:
//   * ld::LogStructuredDisk (src/lld/)  — the paper's LLD.
//   * ld::FlatDisk          (src/flatld/) — update-in-place baseline.

#ifndef SRC_LD_LOGICAL_DISK_H_
#define SRC_LD_LOGICAL_DISK_H_

#include <cstdint>
#include <span>

#include "src/disk/block_device.h"
#include "src/ld/types.h"
#include "src/lld/reports.h"
#include "src/util/status.h"

namespace ld {

class LogicalDisk {
 public:
  virtual ~LogicalDisk() = default;

  // ---- Block operations -------------------------------------------------

  // Reads logical block `bid` into `out`. out.size() must equal the block's
  // size. A block that was allocated but never written reads as zeros.
  virtual Status Read(Bid bid, std::span<uint8_t> out) = 0;

  // Writes logical block `bid`. data.size() must equal the block's size.
  virtual Status Write(Bid bid, std::span<const uint8_t> data) = 0;

  // Asynchronous read: like Read, but when the block is a plain stored copy
  // on the media the device request is *queued* and its tag returned, so the
  // simulated transfer overlaps whatever the caller does next (data lands in
  // `out` at submit time per the BlockDevice contract; only the timing is
  // deferred). Blocks that need more than a raw transfer — holes, copies
  // still in an in-memory buffer, compressed or damaged blocks — are served
  // by the synchronous path and report kInvalidIoTag, meaning "already
  // complete". The default implementation is that fallback for every block.
  virtual StatusOr<IoTag> SubmitRead(Bid bid, std::span<uint8_t> out) {
    RETURN_IF_ERROR(Read(bid, out));
    return kInvalidIoTag;
  }

  // Advances the clock to the completion of a SubmitRead tag.
  // kInvalidIoTag (the synchronous fallback) is a no-op.
  virtual Status WaitRead(IoTag tag) {
    (void)tag;
    return OkStatus();
  }

  // Allocates a logical block number and inserts it into list `lid` after
  // block `pred_bid` (kBeginOfList inserts at the front). `size_bytes` is
  // the block's size class; LD supports multiple block sizes (§2.1), e.g.
  // 64-byte i-node blocks next to 4-KB data blocks. Pass 0 for the
  // implementation's default block size.
  virtual StatusOr<Bid> NewBlock(Lid lid, Bid pred_bid, uint32_t size_bytes = 0) = 0;

  // Removes `bid` from list `lid` and frees its block number.
  // `pred_bid_hint` is a hint for the predecessor: if correct, the unlink is
  // one pointer update; if wrong or kNilBid, LD walks the list (§2.2).
  virtual Status DeleteBlock(Bid bid, Lid lid, Bid pred_bid_hint) = 0;

  // ---- List operations --------------------------------------------------

  // Allocates a list, inserted in the list of lists after `pred_lid`
  // (kBeginOfListOfLists inserts at the front).
  virtual StatusOr<Lid> NewList(Lid pred_lid, ListHints hints) = 0;

  // Frees list `lid` and every block still on it. `pred_lid_hint` is the
  // analogue of DeleteBlock's hint, for the list of lists.
  virtual Status DeleteList(Lid lid, Lid pred_lid_hint) = 0;

  // Moves the sublist [first..last] out of `from_lid` and inserts it into
  // `to_lid` after `pred_bid`. Lets a file system re-express clustering.
  virtual Status MoveSublist(Bid first, Bid last, Lid from_lid, Lid to_lid, Bid pred_bid) = 0;

  // Repositions `lid` in the list of lists after `new_pred_lid`.
  virtual Status MoveList(Lid lid, Lid new_pred_lid) = 0;

  // Makes all previous operations touching `lid` durable (easy fsync, §2.2).
  virtual Status FlushList(Lid lid) = 0;

  // ---- Atomic recovery units & durability --------------------------------

  // All commands until the next EndARU form one explicit atomic recovery
  // unit: after a failure, either all of them or none of them are visible.
  virtual Status BeginARU() = 0;
  virtual Status EndARU() = 0;

  // Concurrent ARUs — the extension the paper sketches in §5.4 for
  // multithreaded file systems: BeginConcurrentARU hands out an identifier;
  // SelectARU(id) routes subsequent commands into that unit (0 = no unit);
  // EndConcurrentARU(id) commits it. Units may interleave freely. An
  // implementation without recovery units returns UNIMPLEMENTED.
  using AruId = uint32_t;
  virtual StatusOr<AruId> BeginConcurrentARU() {
    return UnimplementedError("concurrent ARUs not supported");
  }
  virtual Status SelectARU(AruId id) {
    (void)id;
    return UnimplementedError("concurrent ARUs not supported");
  }
  virtual Status EndConcurrentARU(AruId id) {
    (void)id;
    return UnimplementedError("concurrent ARUs not supported");
  }
  // Abandons an open unit: its commit record is never written, so recovery
  // drops all of its operations. The runtime in-memory state is NOT rolled
  // back — the client must treat its own state as failed (reopen to heal).
  virtual Status AbandonARU(AruId id) {
    (void)id;
    return UnimplementedError("concurrent ARUs not supported");
  }

  // SwapContents (paper §5.4): atomically exchanges the contents (physical
  // locations) of two logical blocks of the same size class. New versions of
  // blocks can be installed atomically without losing the old versions —
  // the building block for transactions and multiversion storage.
  virtual Status SwapContents(Bid a, Bid b) {
    (void)a;
    (void)b;
    return UnimplementedError("SwapContents not supported");
  }

  // Offset addressing (paper §5.4): indexes a list as an array, returning
  // its index-th block. Lets a FAT-like file system drop its table and a
  // UNIX-like one drop indirect blocks; makes compact B-trees possible.
  virtual StatusOr<Bid> BlockAtIndex(Lid lid, uint64_t index) {
    (void)lid;
    (void)index;
    return UnimplementedError("offset addressing not supported");
  }

  // After Flush returns, all preceding operations survive the given kinds
  // of failure.
  virtual Status Flush(FailureSet failures = FailureSet::kPowerFailure) = 0;

  // ---- Space reservation -------------------------------------------------

  // Reserves physical space for `count` future blocks of `size_bytes` each,
  // so a file system can guarantee that buffered writes will not fail with
  // NO_SPACE (the UNIX delayed-write problem, §2.2).
  virtual Status ReserveBlocks(uint64_t count, uint32_t size_bytes = 0) = 0;
  virtual Status CancelReservation(uint64_t count, uint32_t size_bytes = 0) = 0;

  // ---- Media health -------------------------------------------------------

  // Read-repair pass over the whole volume: verify every piece of durable
  // state, repair or relocate what the implementation can, and report the
  // rest. Exposed on the interface so file-system checkers (fsck) can drive
  // a media scrub through their own entry points without knowing the LD
  // implementation. Implementations without media redundancy or
  // verification return UNIMPLEMENTED.
  virtual StatusOr<ScrubReport> Scrub() {
    return UnimplementedError("media scrub not supported");
  }

  // True once the implementation has hit an unrecoverable device failure
  // and degraded to read-only service.
  virtual bool degraded() const { return false; }

  // Health/queue counters of the device under this LD, when there is one.
  // Lets clients (the MINIX buffer cache) publish their own counters next to
  // the device's without knowing the implementation.
  virtual DiskStats* device_stats() { return nullptr; }

  // Labels this LD instance's device requests with a tenant session id so a
  // shared device can attribute and arbitrate them (QoS dispatch). No-op for
  // implementations without a device.
  virtual void SetTenant(TenantId tenant) { (void)tenant; }

  // ---- Lifecycle & introspection ------------------------------------------

  // Flushes state and writes a clean-shutdown checkpoint so the next
  // startup does not need log recovery.
  virtual Status Shutdown() = 0;

  // Default block size class of this instance.
  virtual uint32_t default_block_size() const = 0;

  // Size class of an allocated block.
  virtual StatusOr<uint32_t> BlockSize(Bid bid) const = 0;

  // Bytes available for new user blocks (net of reservations).
  virtual uint64_t FreeBytes() const = 0;
};

}  // namespace ld

#endif  // SRC_LD_LOGICAL_DISK_H_

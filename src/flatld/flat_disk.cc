#include "src/flatld/flat_disk.h"

#include <cstring>

#include "src/util/crc32.h"
#include "src/util/serialize.h"

namespace ld {

namespace {
constexpr uint32_t kTableMagic = 0x464c4154;  // "FLAT"
}  // namespace

FlatDisk::FlatDisk(BlockDevice* device, const FlatOptions& options)
    : device_(device), options_(options) {}

Status FlatDisk::ComputeLayout() {
  // Reserve ~1/32 of the device for the allocation table, after one sector
  // of header space.
  const uint64_t total = device_->num_sectors();
  table_start_sector_ = 1;
  table_sectors_ = std::max<uint64_t>(total / 32, 256);
  data_start_sector_ = table_start_sector_ + table_sectors_;
  if (data_start_sector_ >= total) {
    return InvalidArgumentError("device too small for FlatDisk");
  }
  data_sectors_ = total - data_start_sector_;
  sector_used_.assign(data_sectors_, false);
  return OkStatus();
}

StatusOr<std::unique_ptr<FlatDisk>> FlatDisk::Format(BlockDevice* device,
                                                     const FlatOptions& options) {
  std::unique_ptr<FlatDisk> fd(new FlatDisk(device, options));
  RETURN_IF_ERROR(fd->ComputeLayout());
  fd->dirty_table_ = true;
  RETURN_IF_ERROR(fd->PersistTable());
  return fd;
}

StatusOr<std::unique_ptr<FlatDisk>> FlatDisk::Open(BlockDevice* device,
                                                   const FlatOptions& options) {
  std::unique_ptr<FlatDisk> fd(new FlatDisk(device, options));
  RETURN_IF_ERROR(fd->ComputeLayout());
  RETURN_IF_ERROR(fd->LoadTable());
  return fd;
}

StatusOr<uint64_t> FlatDisk::AllocExtent(uint32_t sectors, uint64_t near_sector) {
  const uint64_t start_hint =
      near_sector >= data_start_sector_ ? near_sector - data_start_sector_ : 0;
  // First fit scanning forward from the hint, wrapping once.
  for (uint64_t pass = 0; pass < 2; ++pass) {
    const uint64_t begin = pass == 0 ? start_hint : 0;
    const uint64_t end = pass == 0 ? data_sectors_ : start_hint;
    uint64_t run = 0;
    for (uint64_t s = begin; s < end; ++s) {
      run = sector_used_[s] ? 0 : run + 1;
      if (run == sectors) {
        const uint64_t first = s + 1 - sectors;
        for (uint64_t i = first; i <= s; ++i) {
          sector_used_[i] = true;
        }
        used_sectors_ += sectors;
        return data_start_sector_ + first;
      }
    }
  }
  return NoSpaceError("FlatDisk: no free extent of " + std::to_string(sectors) + " sectors");
}

void FlatDisk::FreeExtent(uint64_t start, uint32_t sectors) {
  const uint64_t first = start - data_start_sector_;
  for (uint64_t i = first; i < first + sectors; ++i) {
    sector_used_[i] = false;
  }
  used_sectors_ -= sectors;
}

Status FlatDisk::Read(Bid bid, std::span<uint8_t> out) {
  if (bid == kNilBid || bid >= entries_.size() || !entries_[bid].allocated) {
    return NotFoundError("unknown block");
  }
  const Entry& e = entries_[bid];
  if (out.size() != e.size_class) {
    return InvalidArgumentError("read size mismatch");
  }
  const size_t span_bytes = static_cast<size_t>(e.sectors) * device_->sector_size();
  std::vector<uint8_t> buf(span_bytes);
  RETURN_IF_ERROR(device_->Read(e.start_sector, buf));
  std::memcpy(out.data(), buf.data(), out.size());
  return OkStatus();
}

Status FlatDisk::Write(Bid bid, std::span<const uint8_t> data) {
  if (bid == kNilBid || bid >= entries_.size() || !entries_[bid].allocated) {
    return NotFoundError("unknown block");
  }
  Entry& e = entries_[bid];
  if (data.size() != e.size_class) {
    return InvalidArgumentError("write size mismatch");
  }
  const uint32_t sector = device_->sector_size();
  if (data.size() % sector == 0) {
    return device_->Write(e.start_sector, data);
  }
  // Sub-sector block: read-modify-write its extent.
  std::vector<uint8_t> buf(static_cast<size_t>(e.sectors) * sector);
  RETURN_IF_ERROR(device_->Read(e.start_sector, buf));
  std::memcpy(buf.data(), data.data(), data.size());
  return device_->Write(e.start_sector, buf);
}

StatusOr<Bid> FlatDisk::NewBlock(Lid lid, Bid pred_bid, uint32_t size_bytes) {
  const uint32_t size = size_bytes == 0 ? options_.block_size : size_bytes;
  if (size == 0) {
    return InvalidArgumentError("zero block size");
  }
  if (lid == kNilLid || lid >= lists_.size() || !lists_[lid].allocated) {
    return NotFoundError("unknown list");
  }
  uint64_t near = data_start_sector_;
  Bid succ = kNilBid;
  if (pred_bid != kBeginOfList) {
    if (pred_bid >= entries_.size() || !entries_[pred_bid].allocated ||
        entries_[pred_bid].list != lid) {
      return InvalidArgumentError("bad predecessor");
    }
    const Entry& pred = entries_[pred_bid];
    near = pred.start_sector + pred.sectors;  // Cluster after the predecessor.
    succ = pred.successor;
  } else {
    succ = lists_[lid].first;
  }
  const uint32_t sector = device_->sector_size();
  const uint32_t sectors = (size + sector - 1) / sector;
  ASSIGN_OR_RETURN(uint64_t start, AllocExtent(sectors, near));

  Bid bid;
  if (!free_bids_.empty()) {
    bid = free_bids_.back();
    free_bids_.pop_back();
  } else {
    bid = static_cast<Bid>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[bid];
  e = Entry{};
  e.allocated = true;
  e.start_sector = start;
  e.sectors = sectors;
  e.size_class = size;
  e.list = lid;
  e.successor = succ;
  if (pred_bid == kBeginOfList) {
    lists_[lid].first = bid;
  } else {
    entries_[pred_bid].successor = bid;
  }
  dirty_table_ = true;
  return bid;
}

Status FlatDisk::DeleteBlock(Bid bid, Lid lid, Bid pred_bid_hint) {
  if (bid == kNilBid || bid >= entries_.size() || !entries_[bid].allocated) {
    return NotFoundError("unknown block");
  }
  Entry& e = entries_[bid];
  if (e.list != lid) {
    return InvalidArgumentError("block not on the given list");
  }
  if (lists_[lid].first == bid) {
    lists_[lid].first = e.successor;
  } else {
    Bid pred = kNilBid;
    if (pred_bid_hint != kNilBid && pred_bid_hint < entries_.size() &&
        entries_[pred_bid_hint].allocated && entries_[pred_bid_hint].list == lid &&
        entries_[pred_bid_hint].successor == bid) {
      pred = pred_bid_hint;
    } else {
      for (Bid cur = lists_[lid].first; cur != kNilBid; cur = entries_[cur].successor) {
        if (entries_[cur].successor == bid) {
          pred = cur;
          break;
        }
      }
      if (pred == kNilBid) {
        return NotFoundError("block not found on list");
      }
    }
    entries_[pred].successor = e.successor;
  }
  FreeExtent(e.start_sector, e.sectors);
  e = Entry{};
  free_bids_.push_back(bid);
  dirty_table_ = true;
  return OkStatus();
}

StatusOr<Lid> FlatDisk::NewList(Lid pred_lid, ListHints hints) {
  (void)hints;  // FlatDisk ignores clustering hints beyond predecessor placement.
  if (pred_lid != kBeginOfListOfLists &&
      (pred_lid >= lists_.size() || !lists_[pred_lid].allocated)) {
    return NotFoundError("unknown predecessor list");
  }
  Lid lid;
  if (!free_lids_.empty()) {
    lid = free_lids_.back();
    free_lids_.pop_back();
  } else {
    lid = static_cast<Lid>(lists_.size());
    lists_.emplace_back();
  }
  lists_[lid] = List{};
  lists_[lid].allocated = true;
  dirty_table_ = true;
  return lid;
}

Status FlatDisk::DeleteList(Lid lid, Lid pred_lid_hint) {
  (void)pred_lid_hint;
  if (lid == kNilLid || lid >= lists_.size() || !lists_[lid].allocated) {
    return NotFoundError("unknown list");
  }
  Bid cur = lists_[lid].first;
  while (cur != kNilBid) {
    const Bid next = entries_[cur].successor;
    FreeExtent(entries_[cur].start_sector, entries_[cur].sectors);
    entries_[cur] = Entry{};
    free_bids_.push_back(cur);
    cur = next;
  }
  lists_[lid] = List{};
  free_lids_.push_back(lid);
  dirty_table_ = true;
  return OkStatus();
}

Status FlatDisk::MoveSublist(Bid, Bid, Lid, Lid, Bid) {
  return UnimplementedError("FlatDisk does not support MoveSublist");
}

Status FlatDisk::MoveList(Lid, Lid) {
  return OkStatus();  // No inter-list clustering: the move is a no-op.
}

Status FlatDisk::FlushList(Lid lid) {
  if (lid == kNilLid || lid >= lists_.size() || !lists_[lid].allocated) {
    return NotFoundError("unknown list");
  }
  return Flush(FailureSet::kPowerFailure);
}

Status FlatDisk::BeginARU() {
  return UnimplementedError("FlatDisk does not support atomic recovery units");
}

Status FlatDisk::EndARU() {
  return UnimplementedError("FlatDisk does not support atomic recovery units");
}

StatusOr<Bid> FlatDisk::BlockAtIndex(Lid lid, uint64_t index) {
  if (lid == kNilLid || lid >= lists_.size() || !lists_[lid].allocated) {
    return NotFoundError("unknown list");
  }
  Bid cur = lists_[lid].first;
  for (uint64_t i = 0; cur != kNilBid && i < index; ++i) {
    cur = entries_[cur].successor;
  }
  if (cur == kNilBid) {
    return NotFoundError("list has no block at index " + std::to_string(index));
  }
  return cur;
}

Status FlatDisk::Flush(FailureSet failures) {
  if (failures == FailureSet::kNone) {
    return OkStatus();
  }
  if (failures == FailureSet::kMediaFailure) {
    return UnimplementedError("FlatDisk cannot survive media failure");
  }
  // FlatDisk issues only synchronous writes itself, but the device queue may
  // hold requests from other users of the device; a durability point must
  // cover them too.
  RETURN_IF_ERROR(device_->Drain());
  return PersistTable();
}

Status FlatDisk::ReserveBlocks(uint64_t count, uint32_t size_bytes) {
  const uint32_t size = size_bytes == 0 ? options_.block_size : size_bytes;
  if (FreeBytes() < count * size) {
    return NoSpaceError("cannot reserve");
  }
  reserved_bytes_ += count * size;
  return OkStatus();
}

Status FlatDisk::CancelReservation(uint64_t count, uint32_t size_bytes) {
  const uint32_t size = size_bytes == 0 ? options_.block_size : size_bytes;
  if (count * size > reserved_bytes_) {
    return InvalidArgumentError("cancelling more than is reserved");
  }
  reserved_bytes_ -= count * size;
  return OkStatus();
}

Status FlatDisk::Shutdown() {
  RETURN_IF_ERROR(device_->Drain());
  return PersistTable();
}

StatusOr<uint32_t> FlatDisk::BlockSize(Bid bid) const {
  if (bid == kNilBid || bid >= entries_.size() || !entries_[bid].allocated) {
    return NotFoundError("unknown block");
  }
  return entries_[bid].size_class;
}

uint64_t FlatDisk::FreeBytes() const {
  const uint64_t free_sectors = data_sectors_ - used_sectors_;
  const uint64_t bytes = free_sectors * device_->sector_size();
  return bytes > reserved_bytes_ ? bytes - reserved_bytes_ : 0;
}

StatusOr<std::vector<Bid>> FlatDisk::ListBlocks(Lid lid) const {
  if (lid == kNilLid || lid >= lists_.size() || !lists_[lid].allocated) {
    return NotFoundError("unknown list");
  }
  std::vector<Bid> blocks;
  for (Bid b = lists_[lid].first; b != kNilBid; b = entries_[b].successor) {
    blocks.push_back(b);
    if (blocks.size() > entries_.size()) {
      return CorruptionError("cycle in list");
    }
  }
  return blocks;
}

StatusOr<uint64_t> FlatDisk::PhysicalSector(Bid bid) const {
  if (bid == kNilBid || bid >= entries_.size() || !entries_[bid].allocated) {
    return NotFoundError("unknown block");
  }
  return entries_[bid].start_sector;
}

Status FlatDisk::PersistTable() {
  if (!dirty_table_) {
    return OkStatus();
  }
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU32(kTableMagic);
  enc.PutU32(options_.block_size);
  enc.PutU64(entries_.size());
  for (const Entry& e : entries_) {
    enc.PutU8(e.allocated ? 1 : 0);
    if (!e.allocated) {
      continue;
    }
    enc.PutU64(e.start_sector);
    enc.PutU32(e.sectors);
    enc.PutU32(e.size_class);
    enc.PutU32(e.successor);
    enc.PutU32(e.list);
  }
  enc.PutU64(lists_.size());
  for (const List& l : lists_) {
    enc.PutU8(l.allocated ? 1 : 0);
    if (l.allocated) {
      enc.PutU32(l.first);
    }
  }
  enc.PutU32(Crc32(payload));

  const uint32_t sector = device_->sector_size();
  if (payload.size() > table_sectors_ * sector) {
    return NoSpaceError("FlatDisk allocation table overflow");
  }
  std::vector<uint8_t> padded(((payload.size() + sector - 1) / sector) * sector, 0);
  std::memcpy(padded.data(), payload.data(), payload.size());
  RETURN_IF_ERROR(device_->Write(table_start_sector_, padded));
  dirty_table_ = false;
  return OkStatus();
}

Status FlatDisk::LoadTable() {
  const uint32_t sector = device_->sector_size();
  std::vector<uint8_t> buf(table_sectors_ * sector);
  RETURN_IF_ERROR(device_->Read(table_start_sector_, buf));
  Decoder dec(buf);
  const uint32_t magic = dec.GetU32();
  if (!dec.ok() || magic != kTableMagic) {
    return CorruptionError("device is not a FlatDisk volume");
  }
  options_.block_size = dec.GetU32();
  const uint64_t entry_count = dec.GetU64();
  entries_.assign(entry_count, Entry{});
  used_sectors_ = 0;
  for (uint64_t i = 0; i < entry_count; ++i) {
    Entry& e = entries_[i];
    if (dec.GetU8() == 0) {
      continue;
    }
    e.allocated = true;
    e.start_sector = dec.GetU64();
    e.sectors = dec.GetU32();
    e.size_class = dec.GetU32();
    e.successor = dec.GetU32();
    e.list = dec.GetU32();
    for (uint64_t s = e.start_sector - data_start_sector_;
         s < e.start_sector - data_start_sector_ + e.sectors; ++s) {
      sector_used_[s] = true;
    }
    used_sectors_ += e.sectors;
  }
  const uint64_t list_count = dec.GetU64();
  lists_.assign(list_count, List{});
  for (uint64_t i = 0; i < list_count; ++i) {
    if (dec.GetU8() == 1) {
      lists_[i].allocated = true;
      lists_[i].first = dec.GetU32();
    }
  }
  RETURN_IF_ERROR(dec.ToStatus("FlatDisk table"));

  free_bids_.clear();
  for (Bid b = static_cast<Bid>(entries_.size()) - 1; b >= 1; --b) {
    if (!entries_[b].allocated) {
      free_bids_.push_back(b);
    }
  }
  free_lids_.clear();
  for (Lid l = static_cast<Lid>(lists_.size()) - 1; l >= 1; --l) {
    if (!lists_[l].allocated) {
      free_lids_.push_back(l);
    }
  }
  return OkStatus();
}

}  // namespace ld

// FlatDisk: an update-in-place implementation of the Logical Disk interface.
//
// The paper argues LD's value comes partly from admitting substantially
// different implementations (§5.2: "an LD implementation could use an
// update-in-place strategy or Loge's strategy"). FlatDisk is that other
// implementation: every block gets a fixed physical extent when allocated
// (first-fit, starting near its list predecessor for clustering), writes go
// to that extent in place, and the allocation table is persisted wholesale
// on Flush/Shutdown — the recovery model of a classic FAT-like system,
// deliberately weaker than LLD's.
//
// Atomic recovery units are not supported (BeginARU returns UNIMPLEMENTED):
// an update-in-place LD has no natural log to make them cheap, which is
// exactly the contrast the paper draws.

#ifndef SRC_FLATLD_FLAT_DISK_H_
#define SRC_FLATLD_FLAT_DISK_H_

#include <memory>
#include <vector>

#include "src/disk/block_device.h"
#include "src/ld/logical_disk.h"

namespace ld {

struct FlatOptions {
  uint32_t block_size = 4096;  // Default size class.
};

class FlatDisk : public LogicalDisk {
 public:
  static StatusOr<std::unique_ptr<FlatDisk>> Format(BlockDevice* device,
                                                    const FlatOptions& options);
  static StatusOr<std::unique_ptr<FlatDisk>> Open(BlockDevice* device,
                                                  const FlatOptions& options);

  Status Read(Bid bid, std::span<uint8_t> out) override;
  Status Write(Bid bid, std::span<const uint8_t> data) override;
  StatusOr<Bid> NewBlock(Lid lid, Bid pred_bid, uint32_t size_bytes = 0) override;
  Status DeleteBlock(Bid bid, Lid lid, Bid pred_bid_hint) override;
  StatusOr<Lid> NewList(Lid pred_lid, ListHints hints) override;
  Status DeleteList(Lid lid, Lid pred_lid_hint) override;
  Status MoveSublist(Bid first, Bid last, Lid from_lid, Lid to_lid, Bid pred_bid) override;
  Status MoveList(Lid lid, Lid new_pred_lid) override;
  Status FlushList(Lid lid) override;
  Status BeginARU() override;
  Status EndARU() override;
  StatusOr<Bid> BlockAtIndex(Lid lid, uint64_t index) override;
  Status Flush(FailureSet failures = FailureSet::kPowerFailure) override;
  Status ReserveBlocks(uint64_t count, uint32_t size_bytes = 0) override;
  Status CancelReservation(uint64_t count, uint32_t size_bytes = 0) override;
  Status Shutdown() override;
  uint32_t default_block_size() const override { return options_.block_size; }
  StatusOr<uint32_t> BlockSize(Bid bid) const override;
  uint64_t FreeBytes() const override;

  // Introspection for tests.
  StatusOr<std::vector<Bid>> ListBlocks(Lid lid) const;
  StatusOr<uint64_t> PhysicalSector(Bid bid) const;

 private:
  struct Entry {
    uint64_t start_sector = 0;
    uint32_t sectors = 0;
    uint32_t size_class = 0;
    Bid successor = kNilBid;
    Lid list = kNilLid;
    bool allocated = false;
  };
  struct List {
    Bid first = kNilBid;
    bool allocated = false;
  };

  FlatDisk(BlockDevice* device, const FlatOptions& options);

  Status ComputeLayout();
  // First-fit extent allocation starting from `near_sector`.
  StatusOr<uint64_t> AllocExtent(uint32_t sectors, uint64_t near_sector);
  void FreeExtent(uint64_t start, uint32_t sectors);
  Status PersistTable();
  Status LoadTable();

  BlockDevice* device_;
  FlatOptions options_;

  uint64_t table_start_sector_ = 0;
  uint64_t table_sectors_ = 0;
  uint64_t data_start_sector_ = 0;
  uint64_t data_sectors_ = 0;

  std::vector<Entry> entries_{1};  // [0] reserved.
  std::vector<List> lists_{1};
  std::vector<Bid> free_bids_;
  std::vector<Lid> free_lids_;
  std::vector<bool> sector_used_;  // Allocation bitmap over data sectors.
  uint64_t used_sectors_ = 0;
  uint64_t reserved_bytes_ = 0;
  bool dirty_table_ = false;
};

}  // namespace ld

#endif  // SRC_FLATLD_FLAT_DISK_H_

# Empty dependencies file for bench_partial_segments.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_segments.dir/bench/bench_partial_segments.cc.o"
  "CMakeFiles/bench_partial_segments.dir/bench/bench_partial_segments.cc.o.d"
  "bench/bench_partial_segments"
  "bench/bench_partial_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

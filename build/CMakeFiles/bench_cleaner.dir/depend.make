# Empty dependencies file for bench_cleaner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_small_file.dir/bench/bench_table4_small_file.cc.o"
  "CMakeFiles/bench_table4_small_file.dir/bench/bench_table4_small_file.cc.o.d"
  "bench/bench_table4_small_file"
  "bench/bench_table4_small_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_small_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_rearrange.dir/bench/bench_rearrange.cc.o"
  "CMakeFiles/bench_rearrange.dir/bench/bench_rearrange.cc.o.d"
  "bench/bench_rearrange"
  "bench/bench_rearrange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rearrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

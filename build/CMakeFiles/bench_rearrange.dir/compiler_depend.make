# Empty compiler generated dependencies file for bench_rearrange.
# This may be replaced when dependencies are built.

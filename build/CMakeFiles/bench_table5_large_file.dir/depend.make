# Empty dependencies file for bench_table5_large_file.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_large_file.dir/bench/bench_table5_large_file.cc.o"
  "CMakeFiles/bench_table5_large_file.dir/bench/bench_table5_large_file.cc.o.d"
  "bench/bench_table5_large_file"
  "bench/bench_table5_large_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_large_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table6_write_costs.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_loge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_loge.dir/bench/bench_loge.cc.o"
  "CMakeFiles/bench_loge.dir/bench/bench_loge.cc.o.d"
  "bench/bench_loge"
  "bench/bench_loge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ld_ops.
# This may be replaced when dependencies are built.

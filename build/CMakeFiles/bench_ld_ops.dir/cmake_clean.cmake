file(REMOVE_RECURSE
  "CMakeFiles/bench_ld_ops.dir/bench/bench_ld_ops.cc.o"
  "CMakeFiles/bench_ld_ops.dir/bench/bench_ld_ops.cc.o.d"
  "bench/bench_ld_ops"
  "bench/bench_ld_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ld_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_nvram.
# This may be replaced when dependencies are built.

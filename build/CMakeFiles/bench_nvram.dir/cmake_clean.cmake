file(REMOVE_RECURSE
  "CMakeFiles/bench_nvram.dir/bench/bench_nvram.cc.o"
  "CMakeFiles/bench_nvram.dir/bench/bench_nvram.cc.o.d"
  "bench/bench_nvram"
  "bench/bench_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_segment_size.
# This may be replaced when dependencies are built.

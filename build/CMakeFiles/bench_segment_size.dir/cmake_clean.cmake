file(REMOVE_RECURSE
  "CMakeFiles/bench_segment_size.dir/bench/bench_segment_size.cc.o"
  "CMakeFiles/bench_segment_size.dir/bench/bench_segment_size.cc.o.d"
  "bench/bench_segment_size"
  "bench/bench_segment_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segment_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

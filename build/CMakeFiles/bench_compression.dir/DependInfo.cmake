
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_compression.cc" "CMakeFiles/bench_compression.dir/bench/bench_compression.cc.o" "gcc" "CMakeFiles/bench_compression.dir/bench/bench_compression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ldharness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ldworkload.dir/DependInfo.cmake"
  "/root/repo/build/src/minixfs/CMakeFiles/ldminix.dir/DependInfo.cmake"
  "/root/repo/build/src/ffs/CMakeFiles/ldffs.dir/DependInfo.cmake"
  "/root/repo/build/src/btreefs/CMakeFiles/ldbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/logeld/CMakeFiles/ldloge.dir/DependInfo.cmake"
  "/root/repo/build/src/lld/CMakeFiles/ldlld.dir/DependInfo.cmake"
  "/root/repo/build/src/flatld/CMakeFiles/ldflat.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ldcompress.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lddisk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

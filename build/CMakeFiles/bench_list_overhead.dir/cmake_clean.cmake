file(REMOVE_RECURSE
  "CMakeFiles/bench_list_overhead.dir/bench/bench_list_overhead.cc.o"
  "CMakeFiles/bench_list_overhead.dir/bench/bench_list_overhead.cc.o.d"
  "bench/bench_list_overhead"
  "bench/bench_list_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_list_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_list_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_inode_blocks.dir/bench/bench_inode_blocks.cc.o"
  "CMakeFiles/bench_inode_blocks.dir/bench/bench_inode_blocks.cc.o.d"
  "bench/bench_inode_blocks"
  "bench/bench_inode_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inode_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_inode_blocks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multi_clients.dir/multi_clients.cpp.o"
  "CMakeFiles/multi_clients.dir/multi_clients.cpp.o.d"
  "multi_clients"
  "multi_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

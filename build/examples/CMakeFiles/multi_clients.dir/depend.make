# Empty dependencies file for multi_clients.
# This may be replaced when dependencies are built.

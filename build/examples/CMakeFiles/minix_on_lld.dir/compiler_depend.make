# Empty compiler generated dependencies file for minix_on_lld.
# This may be replaced when dependencies are built.

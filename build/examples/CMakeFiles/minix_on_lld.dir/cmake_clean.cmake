file(REMOVE_RECURSE
  "CMakeFiles/minix_on_lld.dir/minix_on_lld.cpp.o"
  "CMakeFiles/minix_on_lld.dir/minix_on_lld.cpp.o.d"
  "minix_on_lld"
  "minix_on_lld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minix_on_lld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

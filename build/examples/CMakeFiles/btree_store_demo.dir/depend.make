# Empty dependencies file for btree_store_demo.
# This may be replaced when dependencies are built.

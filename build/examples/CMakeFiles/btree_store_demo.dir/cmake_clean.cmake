file(REMOVE_RECURSE
  "CMakeFiles/btree_store_demo.dir/btree_store_demo.cpp.o"
  "CMakeFiles/btree_store_demo.dir/btree_store_demo.cpp.o.d"
  "btree_store_demo"
  "btree_store_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_store_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

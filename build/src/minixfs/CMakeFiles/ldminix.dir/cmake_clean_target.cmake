file(REMOVE_RECURSE
  "libldminix.a"
)

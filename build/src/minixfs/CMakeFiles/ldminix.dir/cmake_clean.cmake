file(REMOVE_RECURSE
  "CMakeFiles/ldminix.dir/backend.cc.o"
  "CMakeFiles/ldminix.dir/backend.cc.o.d"
  "CMakeFiles/ldminix.dir/buffer_cache.cc.o"
  "CMakeFiles/ldminix.dir/buffer_cache.cc.o.d"
  "CMakeFiles/ldminix.dir/classic_backend.cc.o"
  "CMakeFiles/ldminix.dir/classic_backend.cc.o.d"
  "CMakeFiles/ldminix.dir/minix_fs.cc.o"
  "CMakeFiles/ldminix.dir/minix_fs.cc.o.d"
  "CMakeFiles/ldminix.dir/minix_fs_ops.cc.o"
  "CMakeFiles/ldminix.dir/minix_fs_ops.cc.o.d"
  "CMakeFiles/ldminix.dir/minix_fsck.cc.o"
  "CMakeFiles/ldminix.dir/minix_fsck.cc.o.d"
  "CMakeFiles/ldminix.dir/minix_types.cc.o"
  "CMakeFiles/ldminix.dir/minix_types.cc.o.d"
  "libldminix.a"
  "libldminix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldminix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

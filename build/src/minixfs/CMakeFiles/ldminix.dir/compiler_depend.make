# Empty compiler generated dependencies file for ldminix.
# This may be replaced when dependencies are built.

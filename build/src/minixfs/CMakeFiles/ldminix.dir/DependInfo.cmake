
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minixfs/backend.cc" "src/minixfs/CMakeFiles/ldminix.dir/backend.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/backend.cc.o.d"
  "/root/repo/src/minixfs/buffer_cache.cc" "src/minixfs/CMakeFiles/ldminix.dir/buffer_cache.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/buffer_cache.cc.o.d"
  "/root/repo/src/minixfs/classic_backend.cc" "src/minixfs/CMakeFiles/ldminix.dir/classic_backend.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/classic_backend.cc.o.d"
  "/root/repo/src/minixfs/minix_fs.cc" "src/minixfs/CMakeFiles/ldminix.dir/minix_fs.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/minix_fs.cc.o.d"
  "/root/repo/src/minixfs/minix_fs_ops.cc" "src/minixfs/CMakeFiles/ldminix.dir/minix_fs_ops.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/minix_fs_ops.cc.o.d"
  "/root/repo/src/minixfs/minix_fsck.cc" "src/minixfs/CMakeFiles/ldminix.dir/minix_fsck.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/minix_fsck.cc.o.d"
  "/root/repo/src/minixfs/minix_types.cc" "src/minixfs/CMakeFiles/ldminix.dir/minix_types.cc.o" "gcc" "src/minixfs/CMakeFiles/ldminix.dir/minix_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldutil.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lddisk.dir/DependInfo.cmake"
  "/root/repo/build/src/lld/CMakeFiles/ldlld.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ldcompress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

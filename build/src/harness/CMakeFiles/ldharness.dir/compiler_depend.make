# Empty compiler generated dependencies file for ldharness.
# This may be replaced when dependencies are built.

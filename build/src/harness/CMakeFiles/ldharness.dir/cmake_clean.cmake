file(REMOVE_RECURSE
  "CMakeFiles/ldharness.dir/report.cc.o"
  "CMakeFiles/ldharness.dir/report.cc.o.d"
  "CMakeFiles/ldharness.dir/setup.cc.o"
  "CMakeFiles/ldharness.dir/setup.cc.o.d"
  "libldharness.a"
  "libldharness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldharness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libldharness.a"
)

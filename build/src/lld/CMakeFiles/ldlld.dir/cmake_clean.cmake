file(REMOVE_RECURSE
  "CMakeFiles/ldlld.dir/block_map.cc.o"
  "CMakeFiles/ldlld.dir/block_map.cc.o.d"
  "CMakeFiles/ldlld.dir/list_table.cc.o"
  "CMakeFiles/ldlld.dir/list_table.cc.o.d"
  "CMakeFiles/ldlld.dir/lld.cc.o"
  "CMakeFiles/ldlld.dir/lld.cc.o.d"
  "CMakeFiles/ldlld.dir/lld_cleaner.cc.o"
  "CMakeFiles/ldlld.dir/lld_cleaner.cc.o.d"
  "CMakeFiles/ldlld.dir/lld_recovery.cc.o"
  "CMakeFiles/ldlld.dir/lld_recovery.cc.o.d"
  "CMakeFiles/ldlld.dir/memory_model.cc.o"
  "CMakeFiles/ldlld.dir/memory_model.cc.o.d"
  "CMakeFiles/ldlld.dir/summary_record.cc.o"
  "CMakeFiles/ldlld.dir/summary_record.cc.o.d"
  "CMakeFiles/ldlld.dir/usage_table.cc.o"
  "CMakeFiles/ldlld.dir/usage_table.cc.o.d"
  "libldlld.a"
  "libldlld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldlld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

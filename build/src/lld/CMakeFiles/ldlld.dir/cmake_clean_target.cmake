file(REMOVE_RECURSE
  "libldlld.a"
)

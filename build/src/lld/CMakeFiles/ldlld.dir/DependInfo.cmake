
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lld/block_map.cc" "src/lld/CMakeFiles/ldlld.dir/block_map.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/block_map.cc.o.d"
  "/root/repo/src/lld/list_table.cc" "src/lld/CMakeFiles/ldlld.dir/list_table.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/list_table.cc.o.d"
  "/root/repo/src/lld/lld.cc" "src/lld/CMakeFiles/ldlld.dir/lld.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/lld.cc.o.d"
  "/root/repo/src/lld/lld_cleaner.cc" "src/lld/CMakeFiles/ldlld.dir/lld_cleaner.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/lld_cleaner.cc.o.d"
  "/root/repo/src/lld/lld_recovery.cc" "src/lld/CMakeFiles/ldlld.dir/lld_recovery.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/lld_recovery.cc.o.d"
  "/root/repo/src/lld/memory_model.cc" "src/lld/CMakeFiles/ldlld.dir/memory_model.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/memory_model.cc.o.d"
  "/root/repo/src/lld/summary_record.cc" "src/lld/CMakeFiles/ldlld.dir/summary_record.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/summary_record.cc.o.d"
  "/root/repo/src/lld/usage_table.cc" "src/lld/CMakeFiles/ldlld.dir/usage_table.cc.o" "gcc" "src/lld/CMakeFiles/ldlld.dir/usage_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldutil.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lddisk.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ldcompress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ldlld.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblddisk.a"
)

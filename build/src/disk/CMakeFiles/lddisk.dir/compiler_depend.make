# Empty compiler generated dependencies file for lddisk.
# This may be replaced when dependencies are built.

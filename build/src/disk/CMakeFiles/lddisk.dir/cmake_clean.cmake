file(REMOVE_RECURSE
  "CMakeFiles/lddisk.dir/fault_disk.cc.o"
  "CMakeFiles/lddisk.dir/fault_disk.cc.o.d"
  "CMakeFiles/lddisk.dir/geometry.cc.o"
  "CMakeFiles/lddisk.dir/geometry.cc.o.d"
  "CMakeFiles/lddisk.dir/mem_disk.cc.o"
  "CMakeFiles/lddisk.dir/mem_disk.cc.o.d"
  "CMakeFiles/lddisk.dir/sim_disk.cc.o"
  "CMakeFiles/lddisk.dir/sim_disk.cc.o.d"
  "liblddisk.a"
  "liblddisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lddisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ldflat.
# This may be replaced when dependencies are built.

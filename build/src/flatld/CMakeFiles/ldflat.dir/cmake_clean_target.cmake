file(REMOVE_RECURSE
  "libldflat.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ldflat.dir/flat_disk.cc.o"
  "CMakeFiles/ldflat.dir/flat_disk.cc.o.d"
  "libldflat.a"
  "libldflat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldflat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libldworkload.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/data_gen.cc" "src/workload/CMakeFiles/ldworkload.dir/data_gen.cc.o" "gcc" "src/workload/CMakeFiles/ldworkload.dir/data_gen.cc.o.d"
  "/root/repo/src/workload/hot_cold.cc" "src/workload/CMakeFiles/ldworkload.dir/hot_cold.cc.o" "gcc" "src/workload/CMakeFiles/ldworkload.dir/hot_cold.cc.o.d"
  "/root/repo/src/workload/microbench.cc" "src/workload/CMakeFiles/ldworkload.dir/microbench.cc.o" "gcc" "src/workload/CMakeFiles/ldworkload.dir/microbench.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/ldworkload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/ldworkload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minixfs/CMakeFiles/ldminix.dir/DependInfo.cmake"
  "/root/repo/build/src/lld/CMakeFiles/ldlld.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lddisk.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ldcompress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ldworkload.dir/data_gen.cc.o"
  "CMakeFiles/ldworkload.dir/data_gen.cc.o.d"
  "CMakeFiles/ldworkload.dir/hot_cold.cc.o"
  "CMakeFiles/ldworkload.dir/hot_cold.cc.o.d"
  "CMakeFiles/ldworkload.dir/microbench.cc.o"
  "CMakeFiles/ldworkload.dir/microbench.cc.o.d"
  "CMakeFiles/ldworkload.dir/trace.cc.o"
  "CMakeFiles/ldworkload.dir/trace.cc.o.d"
  "libldworkload.a"
  "libldworkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldworkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ldworkload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libldbtree.a"
)

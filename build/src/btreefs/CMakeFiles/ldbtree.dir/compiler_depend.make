# Empty compiler generated dependencies file for ldbtree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ldbtree.dir/btree_store.cc.o"
  "CMakeFiles/ldbtree.dir/btree_store.cc.o.d"
  "libldbtree.a"
  "libldbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ldloge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libldloge.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ldloge.dir/loge_disk.cc.o"
  "CMakeFiles/ldloge.dir/loge_disk.cc.o.d"
  "libldloge.a"
  "libldloge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldloge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

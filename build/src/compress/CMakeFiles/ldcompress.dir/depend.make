# Empty dependencies file for ldcompress.
# This may be replaced when dependencies are built.

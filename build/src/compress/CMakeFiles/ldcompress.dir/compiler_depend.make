# Empty compiler generated dependencies file for ldcompress.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ldcompress.dir/compressor.cc.o"
  "CMakeFiles/ldcompress.dir/compressor.cc.o.d"
  "CMakeFiles/ldcompress.dir/lzrw.cc.o"
  "CMakeFiles/ldcompress.dir/lzrw.cc.o.d"
  "libldcompress.a"
  "libldcompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldcompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libldcompress.a"
)

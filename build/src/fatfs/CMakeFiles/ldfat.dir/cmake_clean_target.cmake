file(REMOVE_RECURSE
  "libldfat.a"
)

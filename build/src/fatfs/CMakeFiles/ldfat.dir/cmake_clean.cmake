file(REMOVE_RECURSE
  "CMakeFiles/ldfat.dir/fat_fs.cc.o"
  "CMakeFiles/ldfat.dir/fat_fs.cc.o.d"
  "libldfat.a"
  "libldfat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldfat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

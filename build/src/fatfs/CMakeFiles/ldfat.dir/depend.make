# Empty dependencies file for ldfat.
# This may be replaced when dependencies are built.

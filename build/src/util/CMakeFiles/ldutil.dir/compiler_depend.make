# Empty compiler generated dependencies file for ldutil.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ldutil.dir/crc32.cc.o"
  "CMakeFiles/ldutil.dir/crc32.cc.o.d"
  "CMakeFiles/ldutil.dir/log.cc.o"
  "CMakeFiles/ldutil.dir/log.cc.o.d"
  "CMakeFiles/ldutil.dir/random.cc.o"
  "CMakeFiles/ldutil.dir/random.cc.o.d"
  "CMakeFiles/ldutil.dir/serialize.cc.o"
  "CMakeFiles/ldutil.dir/serialize.cc.o.d"
  "CMakeFiles/ldutil.dir/stats.cc.o"
  "CMakeFiles/ldutil.dir/stats.cc.o.d"
  "CMakeFiles/ldutil.dir/status.cc.o"
  "CMakeFiles/ldutil.dir/status.cc.o.d"
  "CMakeFiles/ldutil.dir/table.cc.o"
  "CMakeFiles/ldutil.dir/table.cc.o.d"
  "libldutil.a"
  "libldutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libldutil.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ldffs.dir/ffs.cc.o"
  "CMakeFiles/ldffs.dir/ffs.cc.o.d"
  "libldffs.a"
  "libldffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ldffs.
# This may be replaced when dependencies are built.

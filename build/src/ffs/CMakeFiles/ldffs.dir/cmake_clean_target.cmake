file(REMOVE_RECURSE
  "libldffs.a"
)

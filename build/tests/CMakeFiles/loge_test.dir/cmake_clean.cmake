file(REMOVE_RECURSE
  "CMakeFiles/loge_test.dir/loge_test.cc.o"
  "CMakeFiles/loge_test.dir/loge_test.cc.o.d"
  "loge_test"
  "loge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

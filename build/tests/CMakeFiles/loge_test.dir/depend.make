# Empty dependencies file for loge_test.
# This may be replaced when dependencies are built.

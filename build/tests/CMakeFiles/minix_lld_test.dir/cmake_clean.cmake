file(REMOVE_RECURSE
  "CMakeFiles/minix_lld_test.dir/minix_lld_test.cc.o"
  "CMakeFiles/minix_lld_test.dir/minix_lld_test.cc.o.d"
  "minix_lld_test"
  "minix_lld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minix_lld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for minix_lld_test.
# This may be replaced when dependencies are built.

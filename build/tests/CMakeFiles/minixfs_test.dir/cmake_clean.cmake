file(REMOVE_RECURSE
  "CMakeFiles/minixfs_test.dir/minixfs_test.cc.o"
  "CMakeFiles/minixfs_test.dir/minixfs_test.cc.o.d"
  "minixfs_test"
  "minixfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minixfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/minix_fsck_test.dir/minix_fsck_test.cc.o"
  "CMakeFiles/minix_fsck_test.dir/minix_fsck_test.cc.o.d"
  "minix_fsck_test"
  "minix_fsck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minix_fsck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for minix_fsck_test.
# This may be replaced when dependencies are built.

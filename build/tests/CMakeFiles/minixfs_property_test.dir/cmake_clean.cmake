file(REMOVE_RECURSE
  "CMakeFiles/minixfs_property_test.dir/minixfs_property_test.cc.o"
  "CMakeFiles/minixfs_property_test.dir/minixfs_property_test.cc.o.d"
  "minixfs_property_test"
  "minixfs_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minixfs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lld_extensions_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lld_extensions_test.dir/lld_extensions_test.cc.o"
  "CMakeFiles/lld_extensions_test.dir/lld_extensions_test.cc.o.d"
  "lld_extensions_test"
  "lld_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lld_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

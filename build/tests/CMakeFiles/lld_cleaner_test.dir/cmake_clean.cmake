file(REMOVE_RECURSE
  "CMakeFiles/lld_cleaner_test.dir/lld_cleaner_test.cc.o"
  "CMakeFiles/lld_cleaner_test.dir/lld_cleaner_test.cc.o.d"
  "lld_cleaner_test"
  "lld_cleaner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lld_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lld_cleaner_test.
# This may be replaced when dependencies are built.

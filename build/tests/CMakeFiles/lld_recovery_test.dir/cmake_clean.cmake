file(REMOVE_RECURSE
  "CMakeFiles/lld_recovery_test.dir/lld_recovery_test.cc.o"
  "CMakeFiles/lld_recovery_test.dir/lld_recovery_test.cc.o.d"
  "lld_recovery_test"
  "lld_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lld_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lld_recovery_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for lld_internals_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lld_internals_test.dir/lld_internals_test.cc.o"
  "CMakeFiles/lld_internals_test.dir/lld_internals_test.cc.o.d"
  "lld_internals_test"
  "lld_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lld_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for flatld_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flatld_test.dir/flatld_test.cc.o"
  "CMakeFiles/flatld_test.dir/flatld_test.cc.o.d"
  "flatld_test"
  "flatld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

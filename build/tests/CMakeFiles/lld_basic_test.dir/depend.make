# Empty dependencies file for lld_basic_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lld_basic_test.dir/lld_basic_test.cc.o"
  "CMakeFiles/lld_basic_test.dir/lld_basic_test.cc.o.d"
  "lld_basic_test"
  "lld_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lld_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fatfs_test.dir/fatfs_test.cc.o"
  "CMakeFiles/fatfs_test.dir/fatfs_test.cc.o.d"
  "fatfs_test"
  "fatfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fatfs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lld_property_test.dir/lld_property_test.cc.o"
  "CMakeFiles/lld_property_test.dir/lld_property_test.cc.o.d"
  "lld_property_test"
  "lld_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lld_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lld_property_test.
# This may be replaced when dependencies are built.
